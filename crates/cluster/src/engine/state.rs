//! Shared simulation state, per-lane state, and the engine-internal
//! event alphabet.
//!
//! [`SimState`] is the single mutable contract every stage operates
//! on: the stage structs ([`Admission`], [`Control`], [`Faults`],
//! [`Stepper`]) hold no state of their own and receive `&mut SimState`
//! explicitly, so the data flow between stages is visible at every
//! call site instead of hidden in captured locals.
//!
//! The parallel-commit split lives here too: [`LaneBox`] owns
//! everything one execution lane mutates during the parallel phase (a
//! contiguous device range's event queue, a tuner replica, the
//! envelope outbox and pooled scratch), and [`LaneCtx`] is the view a
//! lane handler receives — its own device slices plus read-only shared
//! state. The serial phase reconstructs the same view through
//! [`SimState::with_lane_of`], so lane handlers are the *only*
//! implementation of per-device control logic, which is what makes the
//! serial and parallel paths bit-identical by construction.
//!
//! [`Admission`]: super::admission::Admission
//! [`Control`]: super::control::Control
//! [`Faults`]: super::faults::Faults
//! [`Stepper`]: super::stepper::Stepper

use gpu_sim::{
    DeviceId, GpuDevice, InferenceInstance, ResidentId, StandbyInstance, TrainingProcess,
};
use mudi::policy::{FairState, QueueItem};
use mudi::{CircuitBreaker, Monitor, RetuneGuard};
use resilience::{CheckpointTracker, FaultSchedule, RecoveryPolicy};
use simcore::{ShardMap, SimEvent, SimRng, SimTime, Topology, TraceBus, TraceConfig};
use workloads::perf::DEVICE_MEMORY_GB;
use workloads::{FluctuatingQps, GroundTruth, ServiceId, Zoo};

use crate::job::{JobId, TrainingJob};
use crate::metrics::{FaultMetrics, ServiceMetrics, ServiceTable};
use crate::systems::{build_system, Multiplexer};

use super::config::ClusterConfig;
use super::control::Control;
use super::shard::{Envelope, EventLane, OutMsg, ShardedEvents, VpCache, AUTO_SHARD_MIN_DEVICES};

/// Engine-internal events, sequenced by the stepper.
///
/// Events split into two populations (see the routing table in
/// [`super::shard`]): lane-local events (`QpsChange`, `Retune`,
/// `SlowdownEnd`, `ProcessRestart`) live on the owning lane's queue
/// and fire in the parallel phase; everything else is global and fires
/// in the serial phase.
#[derive(Clone, Debug)]
pub(super) enum Event {
    JobArrival(JobId),
    JobCompletion {
        job: JobId,
        epoch: u64,
    },
    QpsChange(usize),
    UtilSample,
    /// Forced retune, scheduled when a device pauses its training so
    /// the pause is re-evaluated even without a QPS trigger.
    Retune(usize),
    /// Injected fault (index into the run's [`FaultSchedule`]).
    Fault(usize),
    /// A failed device comes back into service.
    DeviceRepair(usize),
    /// A degraded window (slowdown or post-repair burn-in) ends. The
    /// token invalidates stale events superseded by a newer window.
    SlowdownEnd {
        device: usize,
        token: u64,
    },
    /// A restarting training process finishes its cold restart.
    ProcessRestart {
        device: usize,
        job: JobId,
    },
    /// A warm-standby shadow instance finishes its bounded promote and
    /// starts serving a failed replica's traffic. The token invalidates
    /// promotes superseded by a host failure or an early repair.
    StandbyPromote {
        host: usize,
        token: u64,
    },
}

/// Index of a seeded warm-standby slot into
/// [`SimState::standby_registry`], assigned densely at construction —
/// the standby analogue of `ServiceId`/`DeviceId`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) struct StandbySlot(pub usize);

/// Per-device mergeable accumulator partials.
///
/// Every float a lane accrues concurrently lands here instead of in a
/// global table, keyed by the device that produced it. The partials
/// are reduced by a fixed device-ascending tree fold
/// ([`SimState::fold_services`] / [`SimState::folded_fmetrics`]) whose
/// shape depends only on the replica count — never on the shard or
/// worker partition — so the folded sums are bit-identical across the
/// whole `MUDI_SHARDS × MUDI_THREADS` grid.
pub(super) struct DevAccum {
    /// Per-service metric partials this device accrued. A device
    /// touches at most a few services (its primary, a hosted standby,
    /// a session redeploy), so a tiny linear-scan vec beats a map.
    pub svc: Vec<(ServiceId, ServiceMetrics)>,
    /// Partial of [`FaultMetrics::dropped_requests`].
    pub dropped_requests: f64,
    /// Partial of [`FaultMetrics::rerouted_requests`].
    pub rerouted_requests: f64,
    /// Partial of [`FaultMetrics::standby_reserved_gpu_secs`].
    pub standby_reserved_gpu_secs: f64,
    /// Partial of [`FaultMetrics::standby_served_requests`].
    pub standby_served_requests: f64,
}

impl DevAccum {
    fn new() -> Self {
        DevAccum {
            // Pre-sized so the steady state never allocates: primary +
            // standby + two session redeploys before the first growth.
            svc: Vec::with_capacity(4),
            dropped_requests: 0.0,
            rerouted_requests: 0.0,
            standby_reserved_gpu_secs: 0.0,
            standby_served_requests: 0.0,
        }
    }

    /// The metric partial for `id` on this device (created on first
    /// touch).
    pub fn svc_entry(&mut self, id: ServiceId) -> &mut ServiceMetrics {
        if let Some(i) = self.svc.iter().position(|(s, _)| *s == id) {
            return &mut self.svc[i].1;
        }
        self.svc.push((id, ServiceMetrics::default()));
        &mut self.svc.last_mut().expect("just pushed").1
    }
}

/// Per-device engine-side state beyond the `GpuDevice` itself.
pub(super) struct DeviceState {
    pub qps_gen: FluctuatingQps,
    pub monitor: Monitor,
    /// Last time this device's metrics were accrued. Doubles as the
    /// device's *time watermark*: the serial phase clamps its
    /// per-device timestamps to this (`SimState::dev_time`) so a
    /// device's timeline stays monotone even when a global event fires
    /// at a time the lane already stepped past.
    pub last_accrue: SimTime,
    /// Last accrued P99 batch latency (feedback for GSLICE).
    pub last_p99: Option<f64>,
    /// Last accrued batch-service utilization (`mean latency / fill`).
    pub last_util: f64,
    /// Last accrued per-request violation probability.
    pub last_pviol: f64,
    /// Whether co-located training is paused (SLO infeasibility or,
    /// for non-Mudi systems, memory overflow).
    pub training_paused: bool,
    /// Epoch counter invalidating stale completion events.
    pub epoch: u64,
    /// Last SLO-risk-triggered retune (throttled).
    pub last_risk_tune: SimTime,
    /// The system's current cap on the total training GPU share.
    pub training_share_cap: f64,
    /// When the current pause began (None while running).
    pub paused_since: Option<SimTime>,
    /// Whether a Retune event is already queued for this device
    /// (prevents the pause paths from multiplying heartbeats).
    pub retune_pending: bool,
    /// Service pinned to this device (survives the replica's eviction
    /// while the device is down).
    pub service: ServiceId,
    /// Replica stashed while the device is down; its `qps` tracks the
    /// demand that is being dropped (zero-rated if failed over).
    pub stashed_inference: Option<InferenceInstance>,
    /// Failover traffic routed *to* this device from failed replicas.
    pub extra_qps: f64,
    /// Where this (failed) device's traffic went: `(survivor, share)`,
    /// undone at repair.
    pub rerouted: Vec<(usize, f64)>,
    /// Jobs pinned here awaiting repair (no-requeue recovery policies).
    pub stranded: Vec<JobId>,
    /// Residents mid-restart `(id, until)`: no progress accrues before
    /// `until`.
    pub restarting: Vec<(ResidentId, SimTime)>,
    /// Anti-thrashing dwell/cooldown on fault-triggered retunes.
    pub guard: RetuneGuard,
    /// Sheds best-effort training share while the device is degraded.
    pub breaker: CircuitBreaker,
    /// Bumped whenever a new degraded window starts, so a stale
    /// `SlowdownEnd` cannot clear a newer window.
    pub degrade_token: u64,
    /// Faults observed on this device (every class), feeding the
    /// reliability prior of reliability-aware selectors.
    pub faults_seen: usize,
    /// While this (failed) device's traffic is served by a promoted
    /// standby: the host device carrying it.
    pub standby_host: Option<usize>,
    /// Frozen violation probability for standby-served traffic,
    /// computed from the host's live profile at promote time and
    /// refreshed at every serial-phase [`OutMsg::StandbyQps`] apply.
    /// The *demand mass* a standby serves is booked on this (down)
    /// device's own lane — which tracks the stash QPS exactly — so
    /// blast-traffic conservation stays exact under any partition;
    /// only the violation quality is quantized to serial refreshes.
    pub standby_pviol: f64,
    /// The persistent standby-pool slot seeded on this device (the
    /// covered service lives in [`SimState::standby_registry`]);
    /// survives the host's own failure so the pool re-seeds at repair.
    pub standby_slot: Option<StandbySlot>,
    /// A promote in flight on this host: `(failed device, token)`.
    pub pending_promote: Option<(usize, u64)>,
    /// Bumped per promote so a stale `StandbyPromote` event cannot
    /// activate a superseded hand-off.
    pub promote_token: u64,
    /// Single-slot memo for this device's last violation-probability
    /// computation.
    pub vp_cache: VpCache,
    /// This device's GP-LCB retune substream, derived purely from
    /// `(seed, "retune", device)` — the hot-path replacement for the
    /// old order-sensitive global stream. Two devices retuning in any
    /// interleaving draw the same values, so retune decisions are
    /// partition-invariant.
    pub retune_rng: SimRng,
    /// Mergeable accumulator partials (see [`DevAccum`]).
    pub acc: DevAccum,
}

/// The truly global, *read-only during the parallel phase* slice of
/// the run state: the ground truth (immutable after construction,
/// `Sync`), the base RNG the named substreams fork from, and the
/// placement stream (placement runs in the serial phase only; its
/// draws are keyed by the global dispatch order, which is itself
/// partition-invariant).
pub(super) struct SharedState {
    pub gt: GroundTruth,
    pub rng: SimRng,
    /// The §5.2 placement stream (`fork("place")`), consumed only by
    /// the serial admission path.
    pub place_rng: SimRng,
}

/// Everything one execution lane owns and mutates during the parallel
/// phase. Lanes are built once at construction along the
/// [`ShardMap`]'s contiguous device ranges.
pub(super) struct LaneBox {
    /// This lane's replica of the system under test. Every replica is
    /// built from the same `fork("system")` seed, so offline profiling
    /// and tuner priors are identical across lanes; each replica's
    /// tuner history then only ever sees its own devices' retunes,
    /// which keeps the histories partition-invariant (retune draws come
    /// from per-device substreams anyway).
    pub system: Box<dyn Multiplexer>,
    /// The lane's event queue (lane-local events only).
    pub events: EventLane,
    /// Deferred effects, drained and merge-sorted at the barrier.
    pub outbox: Vec<Envelope>,
    /// The contiguous device range this lane owns.
    pub range: std::ops::Range<usize>,
    /// Pooled scratch for the lane accrual's training-progress pass.
    pub scratch_advance: Vec<(ResidentId, f64, f64)>,
    /// Pooled scratch for completion rescheduling.
    pub scratch_schedule: Vec<(ResidentId, f64)>,
    /// Pooled backing storage for the [`crate::systems::DeviceView`]
    /// task list built on every reconfigure.
    pub scratch_tasks: Vec<workloads::TaskId>,
}

/// The view a lane handler receives: the lane's own device slices
/// (indexed by `d - base`), its [`LaneBox`], and read-only shared
/// state. Built by [`SimState::lane_ctx`] (serial, trace attached) or
/// from split slices in the parallel phase (trace detached — the
/// parallel path only runs with tracing disabled).
pub(super) struct LaneCtx<'a> {
    pub base: usize,
    pub devices: &'a mut [GpuDevice],
    pub dstate: &'a mut [DeviceState],
    pub lane: &'a mut LaneBox,
    pub gt: &'a GroundTruth,
    pub config: &'a ClusterConfig,
    pub jobs: &'a [TrainingJob],
    pub ckpt: &'a [CheckpointTracker],
    pub trace: Option<&'a mut TraceBus>,
}

impl LaneCtx<'_> {
    /// Emits a trace event when a bus is attached (serial phase).
    pub fn emit(&mut self, now: SimTime, f: impl FnOnce() -> SimEvent) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.emit_with(now, f);
        }
    }

    /// Defers an effect into the lane outbox, stamped with the next
    /// `(time, device, seq)` merge key.
    pub fn push_msg(&mut self, at: SimTime, d: usize, msg: OutMsg) {
        let key = self.lane.events.next_msg_key(at, d);
        self.lane.outbox.push(Envelope { key, msg });
    }

    /// Schedules a lane-local event for device `d`.
    pub fn schedule(&mut self, d: usize, at: SimTime, ev: Event) {
        self.lane.events.schedule(d, at, ev);
    }

    /// The multiplier the burst schedule applies right now.
    pub fn burst_multiplier(&self, now: SimTime) -> f64 {
        self.config
            .burst
            .as_ref()
            .map_or(1.0, |b| b.multiplier_at(now))
    }

    /// The training share cap actually applied: the system's decision,
    /// shed by the circuit-breaker while the device is degraded.
    pub fn applied_share_cap(&self, now: SimTime, d: usize) -> f64 {
        let ds = &self.dstate[d - self.base];
        (ds.training_share_cap * ds.breaker.share_multiplier(now)).clamp(0.01, 1.0)
    }

    /// The SLO (seconds) of the service pinned to device `d`.
    pub fn device_slo(&self, d: usize) -> f64 {
        let svc = self.devices[d - self.base]
            .inference()
            .expect("replica deployed")
            .service;
        self.gt.zoo().service(svc).slo_secs()
    }
}

/// Everything a run mutates, shared by every stage through an explicit
/// `&mut SimState` parameter.
pub(super) struct SimState {
    pub config: ClusterConfig,
    /// Global state every lane reads (see [`SharedState`]).
    pub shared: SharedState,
    pub devices: Vec<GpuDevice>,
    pub dstate: Vec<DeviceState>,
    pub jobs: Vec<TrainingJob>,
    pub queue: Vec<QueueItem<JobId>>,
    pub fair: FairState,
    /// The global event queue (shared-state events only).
    pub events: ShardedEvents,
    /// The execution lanes, along contiguous ascending device ranges.
    pub lanes: Vec<LaneBox>,
    /// Device → lane index.
    pub lane_idx: Vec<u32>,
    /// Parallel lane workers, resolved once at construction
    /// (`config.workers`, `0` = `MUDI_THREADS` / core count).
    pub workers: usize,
    /// Pooled envelope buffers for the (possibly nested) barrier
    /// drains; the last entry is the big barrier buffer, the leading
    /// entries serve nested drains inside envelope application.
    pub msg_pool: Vec<Vec<Envelope>>,
    pub util_series: Vec<(f64, f64, f64)>,
    pub bo_iterations: Vec<usize>,
    pub placement_secs: Vec<f64>,
    pub iter_scale: f64,
    /// Pre-drawn fault sequence for this run (empty without a profile).
    pub fault_schedule: FaultSchedule,
    /// Recovery strategy applied to every injected fault.
    pub recovery: RecoveryPolicy,
    /// Fault/recovery accounting, surfaced in the result. The four
    /// lane-accrued float fields additionally carry per-device partials
    /// in [`DevAccum`], folded in by [`SimState::folded_fmetrics`].
    pub fmetrics: FaultMetrics,
    /// Per-job checkpoint trackers, indexed like `jobs`.
    pub ckpt: Vec<CheckpointTracker>,
    /// The rack/node hierarchy devices are addressed through.
    pub topo: Topology,
    /// Open total-outage window start per service (indexed by
    /// `ServiceId`, `None` while any replica is live); closed at repair
    /// or end-of-run.
    pub outage_start: Vec<Option<SimTime>>,
    /// The covered service per seeded warm-standby slot, indexed by
    /// [`StandbySlot`]; fixed after construction.
    pub standby_registry: Vec<ServiceId>,
    /// Cached length of the leading run of completed jobs in `jobs`;
    /// see [`SimState::all_done`].
    pub done_prefix: usize,
    /// The structured event-trace bus (disabled unless `MUDI_TRACE=1`
    /// or a caller opted in; zero-cost when disabled). Tracing forces
    /// the serial lane path.
    pub trace: TraceBus,
    /// Wall-clock seconds spent in the (parallelizable) lane phase.
    pub phase_lane_secs: f64,
    /// Wall-clock seconds spent in the serial phase (barrier drain +
    /// global dispatch).
    pub phase_serial_secs: f64,
    /// Wall-clock seconds of the serial phase spent inside the
    /// utilization sample's parallel read fan-out — a subset of
    /// [`SimState::phase_serial_secs`] that the phase profile reports
    /// as parallelizable.
    pub phase_sample_secs: f64,
    /// Wall-clock seconds of the serial phase spent draining and
    /// applying epoch-barrier envelopes — a subset of
    /// [`SimState::phase_serial_secs`], split out for the scaling
    /// ledger's diagnostics.
    pub phase_barrier_secs: f64,
    /// Wall-clock seconds of the serial phase spent building placement
    /// candidate views — a subset of [`SimState::phase_serial_secs`]
    /// that runs as an order-preserving chunked fan-out over the device
    /// table and is therefore reported as parallelizable by the phase
    /// profile.
    pub phase_place_secs: f64,
}

impl SimState {
    /// Builds the cluster state with the ground truth seeded from the
    /// config and the system's offline profiling already performed.
    pub fn new(config: ClusterConfig) -> Self {
        let zoo = if config.llm_services {
            Zoo::with_llms()
        } else {
            Zoo::standard()
        };
        let gt = GroundTruth::new(zoo, config.seed ^ 0xA100);
        let rng = SimRng::seed(config.seed);
        let n_services = gt.zoo().services().len();
        let recovery = config
            .faults
            .map(|p| p.recovery)
            .unwrap_or_else(RecoveryPolicy::standard);
        let topo = Topology::new(config.topology, config.devices);
        let fault_schedule = match &config.faults {
            Some(profile) => FaultSchedule::generate_with_topology(
                &profile.faults,
                profile.correlated.as_ref(),
                &topo,
                config.max_sim_secs,
                &rng.fork("faults"),
            ),
            None => FaultSchedule::default(),
        };

        // Reliability-aware systems stripe same-service replicas across
        // racks so a single rack outage cannot take every replica down.
        // The striped layout only engages under fault injection: the
        // fault-free paper-reproduction runs keep the flat `d % n`
        // layout so topology never perturbs their results.
        let striped = config.faults.is_some() && config.system.reliability_aware();
        let service_idx: Vec<usize> = if striped {
            striped_service_assignment(&topo, config.devices, n_services)
        } else {
            (0..config.devices).map(|d| d % n_services).collect()
        };

        let mut devices = Vec::with_capacity(config.devices);
        let mut dstate = Vec::with_capacity(config.devices);
        for (d, &svc_idx) in service_idx.iter().enumerate() {
            let service = gt.zoo().services()[svc_idx].id;
            let slo = gt.zoo().service(service).slo;
            let mut dev = GpuDevice::new(DeviceId(d), DEVICE_MEMORY_GB);
            let mut qps_gen = FluctuatingQps::per_replica(rng.fork_indexed("qps", d));
            // Generative replicas sustain a few requests per second, not
            // hundreds: the shared generator's rate is scaled by the
            // service's calibration (`1.0` exactly for classifiers).
            let qps = qps_gen.current()
                * config.load_multiplier
                * gt.zoo().service(service).request_rate_scale();
            dev.deploy_inference(
                &gt,
                SimTime::ZERO,
                InferenceInstance::new(service, 16, 0.6, qps),
            );
            devices.push(dev);
            let _ = &mut qps_gen;
            dstate.push(DeviceState {
                qps_gen,
                monitor: Monitor::new(0.5, slo),
                last_accrue: SimTime::ZERO,
                last_p99: None,
                last_util: 0.0,
                last_pviol: 0.0,
                training_paused: false,
                epoch: 0,
                last_risk_tune: SimTime::ZERO,
                training_share_cap: 1.0,
                paused_since: None,
                retune_pending: false,
                service,
                stashed_inference: None,
                extra_qps: 0.0,
                rerouted: Vec::new(),
                stranded: Vec::new(),
                restarting: Vec::new(),
                guard: RetuneGuard::new(recovery.retune_dwell),
                breaker: CircuitBreaker::new(recovery.degraded_training_share.clamp(0.05, 1.0)),
                degrade_token: 0,
                faults_seen: 0,
                standby_host: None,
                standby_pviol: 0.0,
                standby_slot: None,
                pending_promote: None,
                promote_token: 0,
                vp_cache: VpCache::default(),
                retune_rng: rng.substream("retune", d),
                acc: DevAccum::new(),
            });
        }

        // Seed the warm-standby pool: for each service, park
        // `pool_per_service` shadow instances on hosts whose primary is
        // a *different* service, preferring racks with the fewest
        // primaries of the covered service (so a rack blast that takes
        // every primary down leaves a standby alive elsewhere). Only
        // engages under fault injection with an enabled pool, keeping
        // every other run bit-identical.
        let mut fmetrics = FaultMetrics::default();
        let mut standby_registry: Vec<ServiceId> = Vec::new();
        if config.faults.is_some() && recovery.standby.is_enabled() {
            let standby = recovery.standby;
            for svc_def in gt.zoo().services() {
                let svc = svc_def.id;
                for _ in 0..standby.pool_per_service {
                    let host = (0..config.devices)
                        .filter(|&h| dstate[h].standby_slot.is_none() && dstate[h].service != svc)
                        .min_by_key(|&h| {
                            let rack = topo.rack_of(h);
                            let primaries_in_rack = topo
                                .devices_in_rack(rack)
                                .filter(|&d| dstate[d].service == svc)
                                .count();
                            let standbys_in_rack = topo
                                .devices_in_rack(rack)
                                .filter(|&d| {
                                    dstate[d].standby_slot.map(|s| standby_registry[s.0])
                                        == Some(svc)
                                })
                                .count();
                            (primaries_in_rack, standbys_in_rack, h)
                        });
                    let Some(h) = host else {
                        break; // Every eligible device already hosts a slot.
                    };
                    dstate[h].standby_slot = Some(StandbySlot(standby_registry.len()));
                    standby_registry.push(svc);
                    devices[h].seed_standby(
                        &gt,
                        SimTime::ZERO,
                        StandbyInstance::new(
                            svc,
                            16,
                            standby.reserve_fraction,
                            standby.preloaded_weights,
                        ),
                    );
                    fmetrics.standby_slots += 1;
                }
            }
        }

        // Resolve the shard count: explicit request (env override
        // first, then config) or auto — one lane until the cluster is
        // large enough that the barrier pays, then up to one lane per
        // worker, rack-clamped by the map itself.
        let requested = simcore::env::parse::<usize>("MUDI_SHARDS").unwrap_or(config.shards);
        let shards = if requested == 0 {
            if config.devices >= AUTO_SHARD_MIN_DEVICES {
                simcore::max_workers().min(topo.shape().racks).max(1)
            } else {
                1
            }
        } else {
            requested
        };

        // Build the lanes along the map's contiguous device ranges.
        // Every lane's system replica is built from the same
        // `fork("system")` seed (fork is pure), so replicas are
        // identical at construction including offline profiling.
        let map = ShardMap::new(&topo, shards.max(1));
        let lane_idx: Vec<u32> = (0..config.devices)
            .map(|d| map.shard_of_device(&topo, d) as u32)
            .collect();
        let mut lanes = Vec::with_capacity(map.shards());
        for s in 0..map.shards() {
            let range = map.device_range(s);
            lanes.push(LaneBox {
                system: build_system(config.system, &gt, &mut rng.fork("system")),
                events: EventLane::new(range.start, range.len(), 64),
                // Steady-state stepping must not allocate: size the
                // outbox for a full window of per-device progress and
                // completion envelopes.
                outbox: Vec::with_capacity(8 * range.len() + 64),
                range,
                scratch_advance: Vec::new(),
                scratch_schedule: Vec::new(),
                scratch_tasks: Vec::new(),
            });
        }
        let req_workers = if config.workers == 0 {
            simcore::max_workers()
        } else {
            config.workers
        };
        let workers = req_workers.min(lanes.len()).max(1);

        // Global queue population: all arrivals are scheduled up front,
        // completions are bounded by the training slots, plus the fault
        // schedule and the repair/promote tails.
        let events = ShardedEvents::new(
            config.shard_epoch_secs,
            config.jobs + 3 * config.devices + fault_schedule.events().len() + 64,
        );
        // The barrier buffer must hold every lane's worst-case window
        // of envelopes; the three small leading buffers serve nested
        // drains during envelope application.
        let msg_pool = vec![
            Vec::with_capacity(256),
            Vec::with_capacity(256),
            Vec::with_capacity(256),
            Vec::with_capacity(8 * config.devices + 64),
        ];
        let util_samples = (config.max_sim_secs / config.util_sample_secs.max(1.0)) as usize;
        let util_series = Vec::with_capacity(util_samples.saturating_add(2).min(1 << 18));

        SimState {
            shared: SharedState {
                gt,
                place_rng: rng.fork("place"),
                rng,
            },
            config,
            devices,
            dstate,
            jobs: Vec::new(),
            queue: Vec::new(),
            fair: FairState::new(),
            events,
            lanes,
            lane_idx,
            workers,
            msg_pool,
            util_series,
            // Sized past the retune count of every committed
            // `perf_kernel` shape (the LLM mix retunes the most, ~16k
            // over 5 days) so the history never regrows inside a warm
            // zero-alloc window.
            bo_iterations: Vec::with_capacity(32 * 1024),
            placement_secs: Vec::with_capacity(1024),
            iter_scale: 1.0,
            fault_schedule,
            recovery,
            fmetrics,
            ckpt: Vec::new(),
            topo,
            outage_start: vec![None; n_services],
            standby_registry,
            done_prefix: 0,
            trace: TraceBus::new(TraceConfig::from_env()),
            phase_lane_secs: 0.0,
            phase_serial_secs: 0.0,
            phase_sample_secs: 0.0,
            phase_barrier_secs: 0.0,
            phase_place_secs: 0.0,
        }
    }

    // ------------------------------------------------------------------
    // Lane plumbing.
    // ------------------------------------------------------------------

    /// The lane owning device `d`.
    pub fn lane_of(&self, d: usize) -> usize {
        self.lane_idx[d] as usize
    }

    /// Schedules a lane-local event on the owning lane's queue.
    pub fn schedule_lane(&mut self, d: usize, at: SimTime, ev: Event) {
        let s = self.lane_of(d);
        self.lanes[s].events.schedule(d, at, ev);
    }

    /// Device `d`'s monotone timestamp for a serial-phase operation
    /// nominally at `now`: clamped to the device's accrual watermark,
    /// which a lane may have advanced past `now` within the current
    /// window. The window structure is config-derived and the code
    /// path uniform, so the clamp is identical at every grid point.
    pub fn dev_time(&self, d: usize, now: SimTime) -> SimTime {
        now.max(self.dstate[d].last_accrue)
    }

    /// Total events fired (global + every lane).
    pub fn fired(&self) -> u64 {
        self.events.fired() + self.lanes.iter().map(|l| l.events.fired()).sum::<u64>()
    }

    /// Total pending events (global + every lane).
    pub fn pending_events(&self) -> usize {
        self.events.len() + self.lanes.iter().map(|l| l.events.len()).sum::<usize>()
    }

    /// Firing time of the next event anywhere (global or lane).
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut best = self.events.peek_time();
        for l in &self.lanes {
            if let Some(t) = l.events.peek_time() {
                if best.is_none_or(|b| t < b) {
                    best = Some(t);
                }
            }
        }
        best
    }

    /// The simulated end time: the latest clock across the global
    /// queue and every lane.
    pub fn sim_now(&self) -> SimTime {
        let mut t = self.events.now();
        for l in &self.lanes {
            t = t.max(l.events.now());
        }
        t
    }

    /// Whether any lane still has events at or before `t1`.
    pub fn lanes_pending(&self, t1: SimTime) -> bool {
        self.lanes
            .iter()
            .any(|l| l.events.peek_time().is_some_and(|t| t <= t1))
    }

    /// The serial-phase lane view for lane `s`, trace attached.
    pub fn lane_ctx(&mut self, s: usize) -> LaneCtx<'_> {
        let lane = &mut self.lanes[s];
        let range = lane.range.clone();
        LaneCtx {
            base: range.start,
            devices: &mut self.devices[range.clone()],
            dstate: &mut self.dstate[range],
            lane,
            gt: &self.shared.gt,
            config: &self.config,
            jobs: &self.jobs,
            ckpt: &self.ckpt,
            trace: Some(&mut self.trace),
        }
    }

    /// Runs `f` against the lane view owning device `d`, then drains
    /// the lane's outbox — the serial phase's way of calling a lane
    /// handler so its deferred effects apply immediately (matching the
    /// instant-apply semantics serial events always had).
    pub fn with_lane_of(&mut self, d: usize, f: impl FnOnce(&mut LaneCtx)) {
        let s = self.lane_of(d);
        {
            let mut ctx = self.lane_ctx(s);
            f(&mut ctx);
        }
        self.drain_lane_outbox(s);
    }

    /// Drains one lane's outbox in merge-key order (used after a
    /// serial-phase lane call; the keys are emission-unique, so the
    /// sort is a total order).
    pub fn drain_lane_outbox(&mut self, s: usize) {
        if self.lanes[s].outbox.is_empty() {
            return;
        }
        let mut buf = self.msg_pool.pop().unwrap_or_default();
        debug_assert!(buf.is_empty());
        buf.append(&mut self.lanes[s].outbox);
        buf.sort_unstable_by_key(|e| e.key);
        for e in buf.drain(..) {
            self.apply_envelope(e);
        }
        self.msg_pool.push(buf);
    }

    /// The epoch barrier: concatenates every lane's outbox, sorts by
    /// `(time, device, seq)` merge key, and applies serially. The
    /// concatenation order is irrelevant — the sort key is
    /// partition-invariant and unique per envelope.
    pub fn drain_all_outboxes(&mut self) {
        let t0 = std::time::Instant::now();
        let mut buf = self.msg_pool.pop().unwrap_or_default();
        debug_assert!(buf.is_empty());
        for s in 0..self.lanes.len() {
            buf.append(&mut self.lanes[s].outbox);
        }
        if !buf.is_empty() {
            buf.sort_unstable_by_key(|e| e.key);
            for e in buf.drain(..) {
                self.apply_envelope(e);
            }
        }
        self.msg_pool.push(buf);
        self.phase_barrier_secs += t0.elapsed().as_secs_f64();
    }

    /// Applies one deferred effect. Serial: may touch any shared
    /// state, and may recursively drain the outboxes its own lane
    /// calls fill (the buffer pool is deep enough for the bounded
    /// cascade: standby accrual → progress, evict → retune → bo).
    fn apply_envelope(&mut self, env: Envelope) {
        let at = env.key.time;
        match env.msg {
            OutMsg::Progress { job, iters, run_dt } => {
                let ji = job.0 as usize;
                if let Some(j) = self.jobs.get_mut(ji) {
                    let before = j.completed_iterations;
                    j.completed_iterations += iters;
                    let after = j.completed_iterations;
                    if let Some(ck) = self.ckpt.get_mut(ji) {
                        ck.on_progress(run_dt, before, after);
                    }
                }
            }
            OutMsg::Completion {
                job,
                epoch,
                at: due,
            } => {
                self.events
                    .schedule_at(due, Event::JobCompletion { job, epoch });
            }
            OutMsg::StandbyQps { host, qps } => {
                if self.devices[host].is_up() {
                    let t = self.dev_time(host, at);
                    Control.accrue(self, t, host);
                    self.devices[host].set_standby_qps(&self.shared.gt, t, qps);
                    // The emitter (key actor) is the covered device:
                    // refresh its frozen served-traffic violation
                    // probability from the host's live profile.
                    let target = env.key.actor as usize;
                    if self.dstate[target].standby_host == Some(host) {
                        self.dstate[target].standby_pviol = Control::standby_pviol(self, host);
                    }
                }
            }
            OutMsg::EvictStuck { device } => {
                // Re-validate: the serial phase (or an earlier
                // envelope) may have unstuck the device meanwhile.
                let t = self.dev_time(device, at);
                let ds = &self.dstate[device];
                let stuck = ds
                    .paused_since
                    .map(|t0| t.since(t0).as_secs() > 1800.0)
                    .unwrap_or(false);
                if ds.training_paused && stuck && !self.config.system.manages_memory() {
                    Control.evict_trainings(self, t, device);
                }
            }
            OutMsg::Bo { iters } => self.bo_iterations.push(iters),
        }
    }

    // ------------------------------------------------------------------
    // Folded observability.
    // ------------------------------------------------------------------

    /// Reduces the per-device service partials into a [`ServiceTable`]
    /// by a fixed fold: collect device-ascending, stable-sort by
    /// service id, tree-fold each equal-id run. Both the collection
    /// order and the fold shape are partition-invariant.
    pub fn fold_services(&mut self) -> ServiceTable {
        let n = self.shared.gt.zoo().services().len();
        let mut pairs: Vec<(ServiceId, ServiceMetrics)> = Vec::new();
        for ds in &self.dstate {
            for (id, m) in &ds.acc.svc {
                pairs.push((*id, m.clone()));
            }
        }
        pairs.sort_by_key(|p| p.0 .0);
        let mut table = ServiceTable::new(n);
        let mut i = 0;
        while i < pairs.len() {
            let id = pairs[i].0;
            let mut j = i + 1;
            while j < pairs.len() && pairs[j].0 == id {
                j += 1;
            }
            let group: Vec<ServiceMetrics> = pairs[i..j]
                .iter_mut()
                .map(|p| std::mem::take(&mut p.1))
                .collect();
            if let Some(merged) = simcore::tree_fold(group, |mut a, b| {
                a.merge(&b);
                a
            }) {
                *table.entry(id) = merged;
            }
            i = j;
        }
        table
    }

    /// The fault metrics with the per-device float partials folded in
    /// (fixed device-ascending tree fold). Non-destructive: safe for
    /// mid-run observability.
    pub fn folded_fmetrics(&self) -> FaultMetrics {
        let mut fm = self.fmetrics.clone();
        let parts: Vec<[f64; 4]> = self
            .dstate
            .iter()
            .map(|ds| {
                [
                    ds.acc.dropped_requests,
                    ds.acc.rerouted_requests,
                    ds.acc.standby_reserved_gpu_secs,
                    ds.acc.standby_served_requests,
                ]
            })
            .collect();
        let sums = simcore::tree_fold(parts, |a, b| {
            [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]]
        })
        .unwrap_or([0.0; 4]);
        fm.dropped_requests += sums[0];
        fm.rerouted_requests += sums[1];
        fm.standby_reserved_gpu_secs += sums[2];
        fm.standby_served_requests += sums[3];
        fm
    }

    // ------------------------------------------------------------------
    // Misc queries.
    // ------------------------------------------------------------------

    /// The multiplier the burst schedule applies right now.
    pub fn burst_multiplier(&self, now: SimTime) -> f64 {
        self.config
            .burst
            .as_ref()
            .map_or(1.0, |b| b.multiplier_at(now))
    }

    /// The training share cap actually applied: the system's decision,
    /// shed by the circuit-breaker while the device is degraded.
    pub fn applied_share_cap(&self, now: SimTime, d: usize) -> f64 {
        let st = &self.dstate[d];
        (st.training_share_cap * st.breaker.share_multiplier(now)).clamp(0.01, 1.0)
    }

    /// Whether every submitted job has completed.
    ///
    /// `done_prefix` caches the length of the leading run of completed
    /// jobs so the per-event check is amortized O(1) instead of a scan
    /// of the whole job table. [`crate::job::JobState::Completed`] is
    /// terminal — only [`crate::job::TrainingJob::finish`] sets it, and
    /// the requeue/restart paths operate on device residents, which
    /// never include finished jobs — so the prefix only ever grows.
    pub fn all_done(&mut self) -> bool {
        while self.done_prefix < self.jobs.len()
            && self.jobs[self.done_prefix].state == crate::job::JobState::Completed
        {
            self.done_prefix += 1;
        }
        !self.jobs.is_empty() && self.done_prefix == self.jobs.len()
    }

    /// Re-enqueues a job into the pending queue from its current
    /// recorded progress (requeue recovery and operator eviction).
    pub fn push_queue_item(&mut self, job_id: JobId) {
        let job = &self.jobs[job_id.0 as usize];
        let est = self.shared.gt.zoo().task(job.task).gpu_hours * 3600.0 * self.iter_scale;
        self.queue.push(QueueItem {
            arrival: job.submitted,
            est_duration: simcore::SimDuration::from_secs(est),
            priority: job.priority,
            class: job.class,
            payload: job_id,
        });
    }

    /// Restores a training process for a queued-or-stranded job from
    /// its checkpointed progress.
    pub fn restored_process(&self, job_id: JobId) -> TrainingProcess {
        let job = &self.jobs[job_id.0 as usize];
        TrainingProcess::with_progress(
            ResidentId(job_id.0),
            job.task,
            0.1,
            job.completed_iterations.max(0.0) as u64,
            job.total_iterations,
        )
    }
}

// Re-exported through `super` so callers keep the historical
// `cluster::engine::striped_service_assignment` path.
/// Assigns one inference service per device so that a service's
/// replicas land in as many different fault domains as possible
/// (deploy-time anti-affinity). Greedy and deterministic: devices are
/// visited in index order and each takes the service with the fewest
/// replicas on its own node, breaking ties by fewest replicas in its
/// rack, then fewest overall, then by service index. Striping at node
/// granularity (not just rack) keeps two replicas of the same service
/// off one node whenever the rack has room — a node-level blast then
/// takes at most one replica per service. Totals stay as balanced as
/// the flat `d % n` layout (each service gets `devices / n` ± 1
/// replicas), and a single-node topology degenerates to the flat
/// layout.
pub fn striped_service_assignment(
    topo: &Topology,
    devices: usize,
    n_services: usize,
) -> Vec<usize> {
    assert!(n_services > 0, "need at least one service");
    let mut in_node = vec![vec![0usize; n_services]; topo.shape().nodes()];
    let mut in_rack = vec![vec![0usize; n_services]; topo.shape().racks];
    let mut total = vec![0usize; n_services];
    let mut out = Vec::with_capacity(devices);
    for d in 0..devices {
        let node = topo.node_of(d);
        let r = topo.rack_of(d);
        let best = (0..n_services)
            .min_by_key(|&s| (in_node[node][s], in_rack[r][s], total[s], s))
            .expect("non-empty service list");
        in_node[node][best] += 1;
        in_rack[r][best] += 1;
        total[best] += 1;
        out.push(best);
    }
    out
}

/// The per-placement log retained for the §5.4 optimality analysis:
/// the task, the chosen device, and the candidate `(device, service)`
/// set the selector saw. Reconstructed from the trace bus's placement
/// events — the structured replacement for the old ad-hoc log.
pub type PlacementLog = Vec<(workloads::TaskId, usize, Vec<(usize, ServiceId)>)>;
