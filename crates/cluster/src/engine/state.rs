//! Shared simulation state and the engine-internal event alphabet.
//!
//! [`SimState`] is the single mutable contract every stage operates
//! on: the stage structs ([`Admission`], [`Control`], [`Faults`],
//! [`Stepper`]) hold no state of their own and receive `&mut SimState`
//! explicitly, so the data flow between stages is visible at every
//! call site instead of hidden in captured locals.
//!
//! [`Admission`]: super::admission::Admission
//! [`Control`]: super::control::Control
//! [`Faults`]: super::faults::Faults
//! [`Stepper`]: super::stepper::Stepper

use gpu_sim::{
    DeviceId, GpuDevice, InferenceInstance, ResidentId, StandbyInstance, TrainingProcess,
};
use mudi::policy::{FairState, QueueItem};
use mudi::{CircuitBreaker, Monitor, RetuneGuard};
use resilience::{CheckpointTracker, FaultSchedule, RecoveryPolicy};
use simcore::{SimRng, SimTime, Topology, TraceBus, TraceConfig};
use workloads::perf::DEVICE_MEMORY_GB;
use workloads::{FluctuatingQps, GroundTruth, ServiceId, Zoo};

use crate::job::{JobId, TrainingJob};
use crate::metrics::{FaultMetrics, ServiceTable};
use crate::systems::{build_system, Multiplexer};

use super::config::ClusterConfig;
use super::shard::{ShardMsg, ShardedEvents, VpCache, AUTO_SHARD_MIN_DEVICES};

/// Engine-internal events, sequenced by the stepper.
#[derive(Clone, Debug)]
pub(super) enum Event {
    JobArrival(JobId),
    JobCompletion {
        job: JobId,
        epoch: u64,
    },
    QpsChange(usize),
    UtilSample,
    /// Forced retune, scheduled when a device pauses its training so
    /// the pause is re-evaluated even without a QPS trigger.
    Retune(usize),
    /// Injected fault (index into the run's [`FaultSchedule`]).
    Fault(usize),
    /// A failed device comes back into service.
    DeviceRepair(usize),
    /// A degraded window (slowdown or post-repair burn-in) ends. The
    /// token invalidates stale events superseded by a newer window.
    SlowdownEnd {
        device: usize,
        token: u64,
    },
    /// A restarting training process finishes its cold restart.
    ProcessRestart {
        device: usize,
        job: JobId,
    },
    /// A warm-standby shadow instance finishes its bounded promote and
    /// starts serving a failed replica's traffic. The token invalidates
    /// promotes superseded by a host failure or an early repair.
    StandbyPromote {
        host: usize,
        token: u64,
    },
}

/// Index of a seeded warm-standby slot into
/// [`SimState::standby_registry`], assigned densely at construction —
/// the standby analogue of `ServiceId`/`DeviceId`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) struct StandbySlot(pub usize);

/// Per-device engine-side state beyond the `GpuDevice` itself.
pub(super) struct DeviceState {
    pub qps_gen: FluctuatingQps,
    pub monitor: Monitor,
    /// Last time this device's metrics were accrued.
    pub last_accrue: SimTime,
    /// Last accrued P99 batch latency (feedback for GSLICE).
    pub last_p99: Option<f64>,
    /// Last accrued batch-service utilization (`mean latency / fill`).
    pub last_util: f64,
    /// Last accrued per-request violation probability.
    pub last_pviol: f64,
    /// Whether co-located training is paused (SLO infeasibility or,
    /// for non-Mudi systems, memory overflow).
    pub training_paused: bool,
    /// Epoch counter invalidating stale completion events.
    pub epoch: u64,
    /// Last SLO-risk-triggered retune (throttled).
    pub last_risk_tune: SimTime,
    /// The system's current cap on the total training GPU share.
    pub training_share_cap: f64,
    /// When the current pause began (None while running).
    pub paused_since: Option<SimTime>,
    /// Whether a Retune event is already queued for this device
    /// (prevents the pause paths from multiplying heartbeats).
    pub retune_pending: bool,
    /// Service pinned to this device (survives the replica's eviction
    /// while the device is down).
    pub service: ServiceId,
    /// Replica stashed while the device is down; its `qps` tracks the
    /// demand that is being dropped (zero-rated if failed over).
    pub stashed_inference: Option<InferenceInstance>,
    /// Failover traffic routed *to* this device from failed replicas.
    pub extra_qps: f64,
    /// Where this (failed) device's traffic went: `(survivor, share)`,
    /// undone at repair.
    pub rerouted: Vec<(usize, f64)>,
    /// Jobs pinned here awaiting repair (no-requeue recovery policies).
    pub stranded: Vec<JobId>,
    /// Residents mid-restart `(id, until)`: no progress accrues before
    /// `until`.
    pub restarting: Vec<(ResidentId, SimTime)>,
    /// Anti-thrashing dwell/cooldown on fault-triggered retunes.
    pub guard: RetuneGuard,
    /// Sheds best-effort training share while the device is degraded.
    pub breaker: CircuitBreaker,
    /// Bumped whenever a new degraded window starts, so a stale
    /// `SlowdownEnd` cannot clear a newer window.
    pub degrade_token: u64,
    /// Faults observed on this device (every class), feeding the
    /// reliability prior of reliability-aware selectors.
    pub faults_seen: usize,
    /// While this (failed) device's traffic is served by a promoted
    /// standby: the host device carrying it.
    pub standby_host: Option<usize>,
    /// The persistent standby-pool slot seeded on this device (the
    /// covered service lives in [`SimState::standby_registry`]);
    /// survives the host's own failure so the pool re-seeds at repair.
    pub standby_slot: Option<StandbySlot>,
    /// A promote in flight on this host: `(failed device, token)`.
    pub pending_promote: Option<(usize, u64)>,
    /// Bumped per promote so a stale `StandbyPromote` event cannot
    /// activate a superseded hand-off.
    pub promote_token: u64,
    /// Single-slot memo for this device's last violation-probability
    /// computation; warmed speculatively by the sharded stepper and
    /// consulted (bit-identically) by `Control::accrue`.
    pub vp_cache: VpCache,
}

/// The truly global slice of the run state: what every shard reads and
/// what only the serial commit phase may mutate. Kept deliberately
/// small — the ground truth (immutable after construction, `Sync`), the
/// system under test (its tuner history is order-sensitive), and the
/// global RNG stream (every draw is order-sensitive by definition).
/// Everything per-device lives in the flat `devices`/`dstate` arrays,
/// sliced per shard along the [`ShardMap`](simcore::ShardMap)'s
/// contiguous device ranges.
pub(super) struct SharedState {
    pub gt: GroundTruth,
    pub system: Box<dyn Multiplexer>,
    pub rng: SimRng,
}

/// Everything a run mutates, shared by every stage through an explicit
/// `&mut SimState` parameter.
pub(super) struct SimState {
    pub config: ClusterConfig,
    /// Global state every shard reads; mutated only in the serial
    /// commit phase (see [`SharedState`]).
    pub shared: SharedState,
    pub devices: Vec<GpuDevice>,
    pub dstate: Vec<DeviceState>,
    pub jobs: Vec<TrainingJob>,
    pub queue: Vec<QueueItem<JobId>>,
    pub fair: FairState,
    /// The rack-sharded event scheduler: per-shard queues under one
    /// global clock, bit-identical to a single queue at every count.
    pub events: ShardedEvents,
    pub services: ServiceTable,
    pub util_series: Vec<(f64, f64, f64)>,
    pub bo_iterations: Vec<usize>,
    pub placement_secs: Vec<f64>,
    pub iter_scale: f64,
    /// Pre-drawn fault sequence for this run (empty without a profile).
    pub fault_schedule: FaultSchedule,
    /// Recovery strategy applied to every injected fault.
    pub recovery: RecoveryPolicy,
    /// Fault/recovery accounting, surfaced in the result.
    pub fmetrics: FaultMetrics,
    /// Per-job checkpoint trackers, indexed like `jobs`.
    pub ckpt: Vec<CheckpointTracker>,
    /// The rack/node hierarchy devices are addressed through.
    pub topo: Topology,
    /// Open total-outage window start per service (indexed by
    /// `ServiceId`, `None` while any replica is live); closed at repair
    /// or end-of-run.
    pub outage_start: Vec<Option<SimTime>>,
    /// The covered service per seeded warm-standby slot, indexed by
    /// [`StandbySlot`]; fixed after construction.
    pub standby_registry: Vec<ServiceId>,
    /// Pooled scratch for `Control::accrue`'s training-progress pass
    /// (left empty between events; capacity survives).
    pub scratch_advance: Vec<(ResidentId, f64, f64)>,
    /// Pooled scratch for `Control::reschedule_completions`.
    pub scratch_schedule: Vec<(ResidentId, f64)>,
    /// Pooled backing storage for the [`crate::systems::DeviceView`]
    /// task list built on every `Control::reconfigure`.
    pub scratch_tasks: Vec<workloads::TaskId>,
    /// Pooled drain buffer for cross-shard [`ShardMsg`] inboxes (left
    /// empty between drains; capacity survives).
    pub scratch_msgs: Vec<ShardMsg>,
    /// Cached length of the leading run of completed jobs in `jobs`;
    /// see [`SimState::all_done`].
    pub done_prefix: usize,
    /// The structured event-trace bus (disabled unless `MUDI_TRACE=1`
    /// or a caller opted in; zero-cost when disabled).
    pub trace: TraceBus,
}

impl SimState {
    /// Builds the cluster state with the ground truth seeded from the
    /// config and the system's offline profiling already performed.
    pub fn new(config: ClusterConfig) -> Self {
        let zoo = if config.llm_services {
            Zoo::with_llms()
        } else {
            Zoo::standard()
        };
        let gt = GroundTruth::new(zoo, config.seed ^ 0xA100);
        let rng = SimRng::seed(config.seed);
        let system = build_system(config.system, &gt, &mut rng.fork("system"));
        let n_services = gt.zoo().services().len();
        let recovery = config
            .faults
            .map(|p| p.recovery)
            .unwrap_or_else(RecoveryPolicy::standard);
        let topo = Topology::new(config.topology, config.devices);
        let fault_schedule = match &config.faults {
            Some(profile) => FaultSchedule::generate_with_topology(
                &profile.faults,
                profile.correlated.as_ref(),
                &topo,
                config.max_sim_secs,
                &rng.fork("faults"),
            ),
            None => FaultSchedule::default(),
        };

        // Reliability-aware systems stripe same-service replicas across
        // racks so a single rack outage cannot take every replica down.
        // The striped layout only engages under fault injection: the
        // fault-free paper-reproduction runs keep the flat `d % n`
        // layout so topology never perturbs their results.
        let striped = config.faults.is_some() && config.system.reliability_aware();
        let service_idx: Vec<usize> = if striped {
            striped_service_assignment(&topo, config.devices, n_services)
        } else {
            (0..config.devices).map(|d| d % n_services).collect()
        };

        let mut devices = Vec::with_capacity(config.devices);
        let mut dstate = Vec::with_capacity(config.devices);
        for (d, &svc_idx) in service_idx.iter().enumerate() {
            let service = gt.zoo().services()[svc_idx].id;
            let slo = gt.zoo().service(service).slo;
            let mut dev = GpuDevice::new(DeviceId(d), DEVICE_MEMORY_GB);
            let mut qps_gen = FluctuatingQps::per_replica(rng.fork_indexed("qps", d));
            // Generative replicas sustain a few requests per second, not
            // hundreds: the shared generator's rate is scaled by the
            // service's calibration (`1.0` exactly for classifiers).
            let qps = qps_gen.current()
                * config.load_multiplier
                * gt.zoo().service(service).request_rate_scale();
            dev.deploy_inference(
                &gt,
                SimTime::ZERO,
                InferenceInstance::new(service, 16, 0.6, qps),
            );
            devices.push(dev);
            let _ = &mut qps_gen;
            dstate.push(DeviceState {
                qps_gen,
                monitor: Monitor::new(0.5, slo),
                last_accrue: SimTime::ZERO,
                last_p99: None,
                last_util: 0.0,
                last_pviol: 0.0,
                training_paused: false,
                epoch: 0,
                last_risk_tune: SimTime::ZERO,
                training_share_cap: 1.0,
                paused_since: None,
                retune_pending: false,
                service,
                stashed_inference: None,
                extra_qps: 0.0,
                rerouted: Vec::new(),
                stranded: Vec::new(),
                restarting: Vec::new(),
                guard: RetuneGuard::new(recovery.retune_dwell),
                breaker: CircuitBreaker::new(recovery.degraded_training_share.clamp(0.05, 1.0)),
                degrade_token: 0,
                faults_seen: 0,
                standby_host: None,
                standby_slot: None,
                pending_promote: None,
                promote_token: 0,
                vp_cache: VpCache::default(),
            });
        }

        // Seed the warm-standby pool: for each service, park
        // `pool_per_service` shadow instances on hosts whose primary is
        // a *different* service, preferring racks with the fewest
        // primaries of the covered service (so a rack blast that takes
        // every primary down leaves a standby alive elsewhere). Only
        // engages under fault injection with an enabled pool, keeping
        // every other run bit-identical.
        let mut fmetrics = FaultMetrics::default();
        let mut standby_registry: Vec<ServiceId> = Vec::new();
        if config.faults.is_some() && recovery.standby.is_enabled() {
            let standby = recovery.standby;
            for svc_def in gt.zoo().services() {
                let svc = svc_def.id;
                for _ in 0..standby.pool_per_service {
                    let host = (0..config.devices)
                        .filter(|&h| dstate[h].standby_slot.is_none() && dstate[h].service != svc)
                        .min_by_key(|&h| {
                            let rack = topo.rack_of(h);
                            let primaries_in_rack = topo
                                .devices_in_rack(rack)
                                .filter(|&d| dstate[d].service == svc)
                                .count();
                            let standbys_in_rack = topo
                                .devices_in_rack(rack)
                                .filter(|&d| {
                                    dstate[d].standby_slot.map(|s| standby_registry[s.0])
                                        == Some(svc)
                                })
                                .count();
                            (primaries_in_rack, standbys_in_rack, h)
                        });
                    let Some(h) = host else {
                        break; // Every eligible device already hosts a slot.
                    };
                    dstate[h].standby_slot = Some(StandbySlot(standby_registry.len()));
                    standby_registry.push(svc);
                    devices[h].seed_standby(
                        &gt,
                        SimTime::ZERO,
                        StandbyInstance::new(
                            svc,
                            16,
                            standby.reserve_fraction,
                            standby.preloaded_weights,
                        ),
                    );
                    fmetrics.standby_slots += 1;
                }
            }
        }

        // Resolve the shard count: explicit request (env override
        // first, then config) or auto — one shard until the cluster is
        // large enough that sharding pays, then up to one shard per
        // worker, rack-clamped by the map itself.
        let requested = simcore::env::parse::<usize>("MUDI_SHARDS").unwrap_or(config.shards);
        let shards = if requested == 0 {
            if config.devices >= AUTO_SHARD_MIN_DEVICES {
                simcore::max_workers().min(topo.shape().racks).max(1)
            } else {
                1
            }
        } else {
            requested
        };

        // Steady-state stepping must not allocate (the zero-alloc
        // harness pins this): pre-size the per-shard event heaps and
        // the append-only series for their expected population so the
        // warm kernel never grows them mid-run.
        let events = ShardedEvents::new(
            &topo,
            shards,
            config.shard_epoch_secs,
            fault_schedule.events().len() + 64,
        );
        let util_samples = (config.max_sim_secs / config.util_sample_secs.max(1.0)) as usize;
        let util_series = Vec::with_capacity(util_samples.saturating_add(2).min(1 << 18));

        SimState {
            config,
            shared: SharedState { gt, system, rng },
            devices,
            dstate,
            jobs: Vec::new(),
            queue: Vec::new(),
            fair: FairState::new(),
            events,
            services: ServiceTable::new(n_services),
            util_series,
            // Sized past the retune count of every committed
            // `perf_kernel` shape (the LLM mix retunes the most, ~16k
            // over 5 days) so the history never regrows inside a warm
            // zero-alloc window.
            bo_iterations: Vec::with_capacity(32 * 1024),
            placement_secs: Vec::with_capacity(1024),
            iter_scale: 1.0,
            fault_schedule,
            recovery,
            fmetrics,
            ckpt: Vec::new(),
            topo,
            outage_start: vec![None; n_services],
            standby_registry,
            scratch_advance: Vec::new(),
            scratch_schedule: Vec::new(),
            scratch_tasks: Vec::new(),
            scratch_msgs: Vec::new(),
            done_prefix: 0,
            trace: TraceBus::new(TraceConfig::from_env()),
        }
    }

    /// The multiplier the burst schedule applies right now.
    pub fn burst_multiplier(&self, now: SimTime) -> f64 {
        self.config
            .burst
            .as_ref()
            .map_or(1.0, |b| b.multiplier_at(now))
    }

    /// The training share cap actually applied: the system's decision,
    /// shed by the circuit-breaker while the device is degraded.
    pub fn applied_share_cap(&self, now: SimTime, d: usize) -> f64 {
        let st = &self.dstate[d];
        (st.training_share_cap * st.breaker.share_multiplier(now)).clamp(0.01, 1.0)
    }

    /// The SLO (seconds) of the service pinned to device `d`.
    pub fn device_slo(&self, d: usize) -> f64 {
        let svc = self.devices[d]
            .inference()
            .expect("replica deployed")
            .service;
        self.shared.gt.zoo().service(svc).slo_secs()
    }

    /// Whether every submitted job has completed.
    ///
    /// `done_prefix` caches the length of the leading run of completed
    /// jobs so the per-event check is amortized O(1) instead of a scan
    /// of the whole job table. [`crate::job::JobState::Completed`] is
    /// terminal — only [`crate::job::TrainingJob::finish`] sets it, and
    /// the requeue/restart paths operate on device residents, which
    /// never include finished jobs — so the prefix only ever grows.
    pub fn all_done(&mut self) -> bool {
        while self.done_prefix < self.jobs.len()
            && self.jobs[self.done_prefix].state == crate::job::JobState::Completed
        {
            self.done_prefix += 1;
        }
        !self.jobs.is_empty() && self.done_prefix == self.jobs.len()
    }

    /// Re-enqueues a job into the pending queue from its current
    /// recorded progress (requeue recovery and operator eviction).
    pub fn push_queue_item(&mut self, job_id: JobId) {
        let job = &self.jobs[job_id.0 as usize];
        let est = self.shared.gt.zoo().task(job.task).gpu_hours * 3600.0 * self.iter_scale;
        self.queue.push(QueueItem {
            arrival: job.submitted,
            est_duration: simcore::SimDuration::from_secs(est),
            priority: job.priority,
            class: job.class,
            payload: job_id,
        });
    }

    /// Restores a training process for a queued-or-stranded job from
    /// its checkpointed progress.
    pub fn restored_process(&self, job_id: JobId) -> TrainingProcess {
        let job = &self.jobs[job_id.0 as usize];
        TrainingProcess::with_progress(
            ResidentId(job_id.0),
            job.task,
            0.1,
            job.completed_iterations.max(0.0) as u64,
            job.total_iterations,
        )
    }
}

// Re-exported through `super` so callers keep the historical
// `cluster::engine::striped_service_assignment` path.
/// Assigns one inference service per device so that a service's
/// replicas land in as many different fault domains as possible
/// (deploy-time anti-affinity). Greedy and deterministic: devices are
/// visited in index order and each takes the service with the fewest
/// replicas on its own node, breaking ties by fewest replicas in its
/// rack, then fewest overall, then by service index. Striping at node
/// granularity (not just rack) keeps two replicas of the same service
/// off one node whenever the rack has room — a node-level blast then
/// takes at most one replica per service. Totals stay as balanced as
/// the flat `d % n` layout (each service gets `devices / n` ± 1
/// replicas), and a single-node topology degenerates to the flat
/// layout.
pub fn striped_service_assignment(
    topo: &Topology,
    devices: usize,
    n_services: usize,
) -> Vec<usize> {
    assert!(n_services > 0, "need at least one service");
    let mut in_node = vec![vec![0usize; n_services]; topo.shape().nodes()];
    let mut in_rack = vec![vec![0usize; n_services]; topo.shape().racks];
    let mut total = vec![0usize; n_services];
    let mut out = Vec::with_capacity(devices);
    for d in 0..devices {
        let node = topo.node_of(d);
        let r = topo.rack_of(d);
        let best = (0..n_services)
            .min_by_key(|&s| (in_node[node][s], in_rack[r][s], total[s], s))
            .expect("non-empty service list");
        in_node[node][best] += 1;
        in_rack[r][best] += 1;
        total[best] += 1;
        out.push(best);
    }
    out
}

/// The per-placement log retained for the §5.4 optimality analysis:
/// the task, the chosen device, and the candidate `(device, service)`
/// set the selector saw. Reconstructed from the trace bus's placement
/// events — the structured replacement for the old ad-hoc log.
pub type PlacementLog = Vec<(workloads::TaskId, usize, Vec<(usize, ServiceId)>)>;
