//! Faults stage: schedule application, blast expansion, and recovery.
//!
//! Owns the dispatch of pre-drawn [`resilience::FaultSchedule`] events
//! into device failures, slowdowns, process crashes, and MPS restarts,
//! plus every recovery path: repair, inference failover, warm-standby
//! promotion/demotion, checkpoint rollback and requeue, and post-repair
//! burn-in. Each fault application and standby hand-off is published on
//! the trace bus (faults via [`resilience::FaultEvent::trace_event`],
//! device-level transitions via the gpu-sim traced hooks).
//!
//! Fault *injection* and recovery are serial-phase work — a failure
//! touches survivors across the whole cluster, the job table, and the
//! admission queue. Only the two device-local follow-up events
//! (`SlowdownEnd`, `ProcessRestart`) are lane events, with lane
//! handlers here. Serial handlers clamp every per-device operation to
//! that device's accrual watermark ([`SimState::dev_time`]) so device
//! timelines stay monotone inside a stepping window.

use gpu_sim::{ResidentId, StandbyInstance, TrainingProcess, MPS_RESTART_SECS, SHADOW_SWITCH_SECS};
use mudi::policy::QueueItem;
use resilience::{FaultDomain, FaultKind};
use simcore::{SimDuration, SimEvent, SimTime};

use crate::job::{JobId, JobState};

use super::admission::Admission;
use super::control::{self, Control};
use super::state::{Event, LaneCtx, SimState};

/// Effective-compute factor of a freshly repaired device during its
/// burn-in window (reduced clocks while the driver re-validates
/// memory); cleared after [`resilience::RecoveryPolicy::degraded_hold`].
pub(super) const POST_REPAIR_FACTOR: f64 = 0.85;

/// The faults stage. Stateless: everything lives in [`SimState`].
pub(super) struct Faults;

// ----------------------------------------------------------------------
// Lane handlers.
// ----------------------------------------------------------------------

/// A fault-triggered retune, gated by the anti-thrashing guard: a
/// burst of faults on one device retunes at most once per dwell,
/// and not at all during an explicit cooldown. Load-driven retunes
/// (Monitor drift, SLO risk) are not gated — only fault reactions.
pub(super) fn reconfigure_guarded(ctx: &mut LaneCtx, now: SimTime, d: usize) {
    let li = d - ctx.base;
    if !ctx.devices[li].is_up() {
        return;
    }
    if ctx.dstate[li].guard.allows(now) {
        ctx.dstate[li].guard.record(now);
        control::reconfigure(ctx, now, d);
    }
}

/// A slowdown or burn-in window closes (token-guarded).
pub(super) fn on_slowdown_end(ctx: &mut LaneCtx, now: SimTime, d: usize, token: u64) {
    let li = d - ctx.base;
    if ctx.dstate[li].degrade_token != token || !ctx.devices[li].is_up() {
        return; // Superseded by a newer window or a failure.
    }
    control::accrue(ctx, now, d);
    ctx.devices[li].clear_degraded();
    reconfigure_guarded(ctx, now, d);
    control::reschedule_completions(ctx, now, d);
}

/// A process restart completes (superseded entries are no-ops).
pub(super) fn on_process_restart(ctx: &mut LaneCtx, now: SimTime, d: usize, job: JobId) {
    let li = d - ctx.base;
    let before = ctx.dstate[li].restarting.len();
    ctx.dstate[li]
        .restarting
        .retain(|&(id, until)| id.0 != job.0 || until > now);
    if before == ctx.dstate[li].restarting.len() {
        return; // Entry superseded (e.g. the device failed meanwhile).
    }
    if ctx.devices[li].is_up() {
        control::accrue(ctx, now, d);
        control::reschedule_completions(ctx, now, d);
    }
}

// ----------------------------------------------------------------------
// Serial-phase handlers.
// ----------------------------------------------------------------------

impl Faults {
    /// Serial-phase guarded retune for device `d`.
    pub fn reconfigure_guarded(&self, st: &mut SimState, now: SimTime, d: usize) {
        st.with_lane_of(d, |ctx| reconfigure_guarded(ctx, now, d));
    }

    /// Dispatches schedule entry `idx` to its class handler.
    pub fn on_fault(&self, st: &mut SimState, now: SimTime, idx: usize) {
        let ev = st.fault_schedule.events()[idx];
        // Every observed fault — any class — feeds the device's
        // reliability prior.
        st.dstate[ev.device].faults_seen += 1;
        st.trace.emit_with(now, || ev.trace_event());
        match ev.kind {
            FaultKind::DeviceFailure { repair } => {
                self.on_device_failure(st, now, ev.device, repair, ev.domain)
            }
            FaultKind::Slowdown { factor, duration } => {
                self.on_slowdown(st, now, ev.device, factor, duration)
            }
            FaultKind::ProcessCrash { salt } => self.on_process_crash(st, now, ev.device, salt),
            FaultKind::MpsRestartFailure => self.on_mps_failure(st, now, ev.device),
        }
    }

    /// Hard device failure: the replica and every training process are
    /// evicted, memory state is lost, and the device stays down until
    /// `repair` later. Inference fails over to surviving same-service
    /// replicas (or its traffic drops, every request a violation);
    /// training rolls back to its last checkpoint and either requeues
    /// through the system's placement logic or waits for repair.
    pub fn on_device_failure(
        &self,
        st: &mut SimState,
        now: SimTime,
        d: usize,
        repair: SimDuration,
        domain: FaultDomain,
    ) {
        if !st.devices[d].is_up() {
            return; // Already down (schedules never overlap, but be safe).
        }
        let td = st.dev_time(d, now);
        Control.accrue(st, td, d);
        st.fmetrics.device_failures += 1;
        st.fmetrics.device_down_secs += repair.as_secs();

        let (inf, procs) = st.devices[d].fail(td);
        let inf = inf.expect("replica deployed");
        // Split the replica's demand into its own (`base`) and carried
        // failover traffic; only the base fails over onward — carried
        // shares stay ledgered to their origin devices and drop here.
        let base = (inf.qps - st.dstate[d].extra_qps).max(0.0);
        let mut stash = inf;
        stash.qps = base;
        st.dstate[d].stashed_inference = Some(stash);

        if st.recovery.standby.is_enabled() {
            // A standby hosted on `d` dies with it: any device it was
            // covering loses coverage (its traffic drops until repair,
            // and the service may now be in total outage).
            for f in 0..st.dstate.len() {
                if st.dstate[f].standby_host == Some(d) {
                    // Book the covered span as served before the
                    // coverage flag flips (the span up to this instant
                    // was genuinely standby-served).
                    let tf = st.dev_time(f, now);
                    Control.accrue(st, tf, f);
                    st.dstate[f].standby_host = None;
                    st.dstate[f].standby_pviol = 0.0;
                    let fsvc = st.dstate[f].service;
                    let up = (0..st.devices.len())
                        .filter(|&s| st.devices[s].is_up() && st.dstate[s].service == fsvc)
                        .count();
                    if up == 0 {
                        st.fmetrics.service_outages += 1;
                        if domain.is_correlated() {
                            st.fmetrics.correlated_outages += 1;
                        }
                        st.outage_start[fsvc.0].get_or_insert(now);
                    }
                }
            }
            // Cancel any promotion this device was about to perform.
            if st.dstate[d].pending_promote.take().is_some() {
                st.dstate[d].promote_token += 1;
            }
        }

        let mut standby_covered = false;
        if st.recovery.failover_inference && base > 0.0 {
            let survivors: Vec<usize> = (0..st.devices.len())
                .filter(|&s| {
                    s != d && st.devices[s].is_up() && st.dstate[s].service == st.dstate[d].service
                })
                .collect();
            if !survivors.is_empty() {
                st.fmetrics.inference_failovers += 1;
                st.trace.emit_with(now, || SimEvent::FailoverRerouted {
                    from: d,
                    survivors: survivors.len(),
                });
                // Survivors absorb the load within the same instant,
                // in ascending-device order (each clamped to its own
                // watermark — a survivor's lane may have stepped past
                // `now` this window).
                let share = base / survivors.len() as f64;
                for &s in &survivors {
                    let ts = st.dev_time(s, now);
                    Control.accrue(st, ts, s);
                    st.dstate[s].extra_qps += share;
                    let cur = st.devices[s].inference().expect("up replica").qps;
                    st.devices[s].set_inference_qps(&st.shared.gt, ts, cur + share);
                    st.dstate[d].rerouted.push((s, share));
                    self.reconfigure_guarded(st, ts, s);
                }
                st.fmetrics.failover_latency_secs.push(0.0);
            } else {
                // No survivor left — the blast swallowed every replica.
                // The warm-standby pool is the last line of defense: an
                // idle standby for this service on another up device is
                // promoted after a bounded switch latency instead of
                // dropping every request until repair.
                if st.recovery.standby.is_enabled() {
                    let svc = st.dstate[d].service;
                    let host = (0..st.devices.len()).find(|&h| {
                        h != d
                            && st.devices[h].is_up()
                            && st.dstate[h].pending_promote.is_none()
                            && st.devices[h]
                                .standby()
                                .is_some_and(|s| s.service == svc && !s.is_active())
                    });
                    if let Some(h) = host {
                        st.dstate[h].promote_token += 1;
                        let token = st.dstate[h].promote_token;
                        st.dstate[h].pending_promote = Some((d, token));
                        let promote_secs = if st.devices[h].standby().expect("standby").preloaded {
                            SHADOW_SWITCH_SECS
                        } else {
                            MPS_RESTART_SECS
                        };
                        st.events.schedule_at(
                            now + SimDuration::from_secs(promote_secs),
                            Event::StandbyPromote { host: h, token },
                        );
                        st.fmetrics.failover_latency_secs.push(promote_secs);
                        st.fmetrics.inference_failovers += 1;
                        standby_covered = true;
                    }
                }
                if !standby_covered {
                    // Nobody can take the load: dropped until repair.
                    st.fmetrics.failover_latency_secs.push(repair.as_secs());
                }
            }
        } else if base > 0.0 {
            // Failover disabled: traffic drops for the whole outage.
            st.fmetrics.failover_latency_secs.push(repair.as_secs());
        }

        // Total-outage accounting: if this failure took down the
        // service's last live replica (e.g. every survivor sat inside
        // the same blast radius), open an outage window. The dropped
        // traffic itself is charged per-span by `accrue`; this makes
        // the outage *explicit* rather than silently folded into
        // violations.
        let svc = st.dstate[d].service;
        let up_replicas = (0..st.devices.len())
            .filter(|&s| st.devices[s].is_up() && st.dstate[s].service == svc)
            .count();
        // A pending or already-active standby keeps the service alive:
        // no replica is up, but traffic resumes within the bounded
        // promote window rather than waiting for repair.
        let standby_cover = standby_covered
            || (0..st.devices.len()).any(|h| {
                st.devices[h].is_up()
                    && st.devices[h]
                        .standby()
                        .is_some_and(|s| s.service == svc && s.is_active())
            });
        if up_replicas == 0 && !standby_cover {
            st.fmetrics.service_outages += 1;
            if domain.is_correlated() {
                st.fmetrics.correlated_outages += 1;
            }
            st.outage_start[svc.0].get_or_insert(now);
        }

        // Training: roll back to the checkpoint, then requeue (the
        // scheduler re-places through the system's DeviceSelector) or
        // strand until repair.
        for proc in procs {
            let ji = proc.id.0 as usize;
            let ck = st.ckpt[ji].rollback();
            let lost = (st.jobs[ji].completed_iterations - ck).max(0.0);
            st.fmetrics.lost_iterations += lost;
            st.jobs[ji].rollback_to(ck);
            if st.recovery.requeue_training {
                st.fmetrics.training_evictions += 1;
                let job = &mut st.jobs[ji];
                job.state = JobState::Queued;
                job.device = None;
                let est = st.shared.gt.zoo().task(job.task).gpu_hours * 3600.0 * st.iter_scale;
                st.queue.push(QueueItem {
                    arrival: job.submitted,
                    est_duration: SimDuration::from_secs(est),
                    priority: job.priority,
                    class: job.class,
                    payload: JobId(proc.id.0),
                });
            } else {
                st.jobs[ji].state = JobState::Queued;
                st.dstate[d].stranded.push(JobId(proc.id.0));
            }
        }

        st.dstate[d].restarting.clear();
        st.dstate[d].training_paused = false;
        st.dstate[d].paused_since = None;
        st.dstate[d].epoch += 1; // Invalidate in-flight completions.
        st.dstate[d].guard.cooldown(td, repair);
        st.events.schedule_at(now + repair, Event::DeviceRepair(d));
        if st.recovery.requeue_training {
            Admission.try_dispatch(st, now);
        }
    }

    /// Repair: redeploy the replica at the current demand level, return
    /// failover traffic to this device, restore stranded jobs from
    /// their checkpoints, and enter a degraded burn-in window with the
    /// circuit-breaker shedding training share.
    pub fn on_device_repair(&self, st: &mut SimState, now: SimTime, d: usize) {
        let td = st.dev_time(d, now);
        Control.accrue(st, td, d); // Final span of the outage (drop accounting).
        let (devices, trace) = (&mut st.devices, &mut st.trace);
        devices[d].repair_traced(td, trace);

        // This repair brings the service's replica count back above
        // zero; close any open total-outage window.
        if let Some(start) = st.outage_start[st.dstate[d].service.0].take() {
            st.fmetrics.service_outage_secs += now.since(start).as_secs();
        }

        // Release warm-standby coverage: the covering standby drains
        // back to idle and waits for the next failure.
        if let Some(h) = st.dstate[d].standby_host.take() {
            st.dstate[d].standby_pviol = 0.0;
            if st.devices[h].is_up() {
                let th = st.dev_time(h, now);
                Control.accrue(st, th, h);
                let (devices, trace) = (&mut st.devices, &mut st.trace);
                devices[h].demote_standby_traced(&st.shared.gt, th, d, trace);
                st.fmetrics.standby_reseeds += 1;
                self.reconfigure_guarded(st, th, h);
            }
        }
        // Cancel any promotion still pending on this device's behalf.
        for h in 0..st.dstate.len() {
            if matches!(st.dstate[h].pending_promote, Some((t, _)) if t == d) {
                st.dstate[h].pending_promote = None;
                st.dstate[h].promote_token += 1;
            }
        }

        // Undo the failover: survivors stop serving this replica's
        // share, in the ascending-survivor order the ledger was built
        // in (each clamped to its own watermark).
        let rerouted = std::mem::take(&mut st.dstate[d].rerouted);
        for &(s, share) in &rerouted {
            st.dstate[s].extra_qps = (st.dstate[s].extra_qps - share).max(0.0);
            if st.devices[s].is_up() {
                let ts = st.dev_time(s, now);
                Control.accrue(st, ts, s);
                let cur = st.devices[s].inference().expect("up replica").qps;
                st.devices[s].set_inference_qps(&st.shared.gt, ts, (cur - share).max(0.0));
                self.reconfigure_guarded(st, ts, s);
            }
        }

        // Redeploy at the demand the generator currently calls for.
        let mut inst = st.dstate[d]
            .stashed_inference
            .take()
            .expect("replica stashed at failure");
        let base = st.dstate[d].qps_gen.current()
            * st.config.load_multiplier
            * st.burst_multiplier(now)
            * st.shared
                .gt
                .zoo()
                .service(st.dstate[d].service)
                .request_rate_scale();
        inst.qps = base + st.dstate[d].extra_qps;
        st.devices[d].deploy_inference(&st.shared.gt, td, inst);

        // Re-seed the pool: a repaired device that held a standby slot
        // rejoins with a fresh idle standby.
        let sb = st.recovery.standby;
        if sb.is_enabled() {
            if let Some(slot) = st.dstate[d].standby_slot {
                let svc = st.standby_registry[slot.0];
                if st.devices[d].standby().is_none() {
                    st.devices[d].seed_standby(
                        &st.shared.gt,
                        td,
                        StandbyInstance::new(svc, 16, sb.reserve_fraction, sb.preloaded_weights),
                    );
                    st.fmetrics.standby_reseeds += 1;
                }
            }
        }

        // Stranded jobs resume in place from their checkpoints.
        let stranded = std::mem::take(&mut st.dstate[d].stranded);
        for job_id in stranded {
            let ji = job_id.0 as usize;
            let job = &mut st.jobs[ji];
            job.state = JobState::Running;
            job.device = Some(d);
            let proc = TrainingProcess::with_progress(
                ResidentId(job_id.0),
                job.task,
                0.1,
                job.completed_iterations.max(0.0) as u64,
                job.total_iterations,
            );
            st.devices[d]
                .add_training(&st.shared.gt, td, proc)
                .expect("repaired device has free slots");
        }
        if !st.devices[d].trainings().is_empty() {
            let cap = st.applied_share_cap(td, d);
            st.devices[d].rebalance_training_fractions(cap);
        }

        // Post-repair burn-in: degraded clocks + training share shed.
        st.devices[d].set_degraded(POST_REPAIR_FACTOR);
        st.dstate[d].degrade_token += 1;
        let token = st.dstate[d].degrade_token;
        st.schedule_lane(
            d,
            now + st.recovery.degraded_hold,
            Event::SlowdownEnd { device: d, token },
        );
        st.dstate[d].breaker.trip(td, st.recovery.degraded_hold);

        Control.refresh_memory_pause(st, td, d);
        Control.reconfigure(st, td, d);
        Admission.try_dispatch(st, now);
    }

    /// A scheduled standby promotion fires. If still valid (the token
    /// matches, the host is up, the covered device is still down), the
    /// standby starts serving the failed replica's base traffic on its
    /// reserved slice; otherwise the event is a stale no-op.
    pub fn on_standby_promote(&self, st: &mut SimState, now: SimTime, host: usize, token: u64) {
        if st.dstate[host].promote_token != token {
            return; // Cancelled or superseded.
        }
        let Some((target, t)) = st.dstate[host].pending_promote.take() else {
            return;
        };
        debug_assert_eq!(t, token);
        if !st.devices[host].is_up() || st.devices[target].is_up() {
            return; // Host died meanwhile, or the target already repaired.
        }
        let qps = st.dstate[target]
            .stashed_inference
            .as_ref()
            .map_or(0.0, |i| i.qps);
        if qps <= 0.0 {
            return; // Demand vanished during the promote window.
        }
        // Book the drop span on the target up to the promote instant,
        // then hand its traffic to the standby.
        let tt = st.dev_time(target, now);
        Control.accrue(st, tt, target);
        let th = st.dev_time(host, now);
        Control.accrue(st, th, host);
        let (devices, trace) = (&mut st.devices, &mut st.trace);
        devices[host].promote_standby_traced(&st.shared.gt, th, qps, target, trace);
        st.dstate[target].standby_host = Some(host);
        st.dstate[target].standby_pviol = Control::standby_pviol(st, host);
        st.fmetrics.standby_promotions += 1;
        self.reconfigure_guarded(st, th, host);
    }

    /// Transient slowdown: the device keeps running at `factor` of its
    /// effective compute for `duration`; the breaker sheds training
    /// share and a (guarded) retune lets the system adapt its batch.
    pub fn on_slowdown(
        &self,
        st: &mut SimState,
        now: SimTime,
        d: usize,
        factor: f64,
        duration: SimDuration,
    ) {
        if !st.devices[d].is_up() {
            return;
        }
        let td = st.dev_time(d, now);
        Control.accrue(st, td, d);
        st.fmetrics.slowdowns += 1;
        st.devices[d].set_degraded(factor.clamp(0.05, 1.0));
        st.dstate[d].degrade_token += 1;
        let token = st.dstate[d].degrade_token;
        st.schedule_lane(d, now + duration, Event::SlowdownEnd { device: d, token });
        st.dstate[d].breaker.trip(td, duration);
        self.reconfigure_guarded(st, td, d);
        Control.reschedule_completions(st, td, d);
    }

    /// One training process dies and restarts from its checkpoint:
    /// rolled-back work is lost and the process sits out the restart.
    pub fn on_process_crash(&self, st: &mut SimState, now: SimTime, d: usize, salt: u64) {
        if !st.devices[d].is_up() || st.devices[d].trainings().is_empty() {
            return;
        }
        let td = st.dev_time(d, now);
        Control.accrue(st, td, d);
        st.fmetrics.process_crashes += 1;
        let n = st.devices[d].trainings().len();
        let victim = st.devices[d].trainings()[salt as usize % n].id;
        let ji = victim.0 as usize;
        let ck = st.ckpt[ji].rollback();
        let lost = (st.jobs[ji].completed_iterations - ck).max(0.0);
        st.fmetrics.lost_iterations += lost;
        st.jobs[ji].rollback_to(ck);
        if let Some(proc) = st.devices[d].training_mut(victim) {
            proc.completed_iterations = ck.max(0.0) as u64;
        }
        let restart = st.recovery.process_restart;
        st.fmetrics.restart_downtime_secs += restart.as_secs();
        let until = td + restart;
        st.dstate[d].restarting.retain(|&(id, _)| id != victim);
        st.dstate[d].restarting.push((victim, until));
        st.schedule_lane(
            d,
            until,
            Event::ProcessRestart {
                device: d,
                job: JobId(victim.0),
            },
        );
        Control.reschedule_completions(st, td, d);
    }

    /// MPS daemon failure: every process on the device takes a cold
    /// restart. No training work is lost (the processes were healthy),
    /// but inference is down for the restart — every request in the
    /// window violates — and training sits out the outage.
    pub fn on_mps_failure(&self, st: &mut SimState, now: SimTime, d: usize) {
        if !st.devices[d].is_up() {
            return;
        }
        let td = st.dev_time(d, now);
        Control.accrue(st, td, d);
        st.fmetrics.mps_failures += 1;
        let q = st.devices[d].inference().expect("up replica").qps;
        let lost = q * MPS_RESTART_SECS;
        // Lane-accrued floats always go through the per-device
        // partials, even from serial handlers, so the folded totals
        // have one consistent reduction path.
        let svc = st.dstate[d].service;
        let acc = &mut st.dstate[d].acc;
        let m = acc.svc_entry(svc);
        m.requests += lost;
        m.violations += lost;
        acc.dropped_requests += lost;

        let restart = SimDuration::from_secs(MPS_RESTART_SECS);
        let until = td + restart;
        let ids: Vec<ResidentId> = st.devices[d].trainings().iter().map(|t| t.id).collect();
        for id in ids {
            st.fmetrics.restart_downtime_secs += MPS_RESTART_SECS;
            st.dstate[d].restarting.retain(|&(i, _)| i != id);
            st.dstate[d].restarting.push((id, until));
            st.schedule_lane(
                d,
                until,
                Event::ProcessRestart {
                    device: d,
                    job: JobId(id.0),
                },
            );
        }
        st.dstate[d].guard.cooldown(td, restart);
        Control.reschedule_completions(st, td, d);
    }
}
