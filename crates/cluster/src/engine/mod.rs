//! The discrete-event cluster engine, as a staged simulation kernel.
//!
//! Every device hosts one inference replica (service types round-robin
//! across devices) plus the training tasks the system under test
//! places there. The engine is event-driven with **analytic accrual**:
//! device state (QPS level, batch, GPU fractions, residents) is
//! piecewise-constant between events, so SLO-violation fractions and
//! training progress integrate in closed form from the ground-truth
//! model over each span — the same fitted-function replay the paper's
//! own 1000-GPU simulator uses (§7.1).
//!
//! The kernel is split into stages, each a stateless struct operating
//! on an explicit `&mut SimState` contract:
//!
//! - `admission` — task arrivals and §5.2 device selection;
//! - `control` — analytic accrual, per-device GP-LCB batching, and
//!   resource-scaling ticks;
//! - `faults` — fault-schedule application, blast expansion, and
//!   standby promote/demote;
//! - `stepper` — the time loop sequencing the stages, plus result
//!   assembly. RNG streams are owned by the shared `SimState` and
//!   forked by name, so the stage split cannot perturb determinism.
//!
//! All stages publish structured [`simcore::SimEvent`]s on the run's
//! trace bus — placement decisions with candidate sets, retune
//! accept/reject, fault apply/repair, standby hand-offs. Tracing is off
//! by default (and zero-cost when off); set `MUDI_TRACE=1` to record
//! and dump a summary to stderr, or inject a
//! [`simcore::TraceConfig`] via [`ClusterEngine::set_trace_config`].

mod admission;
mod config;
mod control;
mod faults;
mod session;
mod shard;
mod state;
mod stepper;

#[cfg(test)]
mod tests;

use std::time::Instant;

use mudi::{CircuitBreaker, RetuneGuard};
use resilience::{FaultSchedule, RecoveryPolicy};
use simcore::{Topology, TraceBus, TraceConfig, TraceSummary};
use workloads::{GroundTruth, ServiceId, TaskId};

use crate::metrics::ExperimentResult;

use admission::Admission;
use state::SimState;
use stepper::Stepper;

pub use config::{ClusterConfig, ClusterConfigBuilder, ClusterScale, ScalePreset};
pub use control::{itl_violation_probability, violation_probability};
pub use session::{
    ClusterSession, GenInferOutcome, InferOutcome, LiveFault, ScaleOutcome, ServiceSlo,
    SessionError, TokenVerdict,
};
pub use state::{striped_service_assignment, PlacementLog};

/// The cluster engine: a thin facade over the staged kernel.
pub struct ClusterEngine {
    st: SimState,
}

impl ClusterEngine {
    /// Builds a cluster with the ground truth seeded from the config
    /// and the system's offline profiling already performed.
    pub fn new(config: ClusterConfig) -> Self {
        ClusterEngine {
            st: SimState::new(config),
        }
    }

    /// Replaces the generated fault schedule — tests inject hand-built
    /// scenarios (e.g. exactly one failure at a known time). Must be
    /// called before the run starts.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.st.fault_schedule = schedule;
    }

    /// Overrides the recovery policy (pairs with
    /// [`ClusterEngine::set_fault_schedule`] for injected scenarios).
    pub fn set_recovery_policy(&mut self, recovery: RecoveryPolicy) {
        self.st.recovery = recovery;
        for st in &mut self.st.dstate {
            st.guard = RetuneGuard::new(recovery.retune_dwell);
            st.breaker = CircuitBreaker::new(recovery.degraded_training_share.clamp(0.05, 1.0));
        }
    }

    /// Replaces the trace-bus configuration (default: from the
    /// `MUDI_TRACE` environment). Must be called before the run starts;
    /// events emitted so far are discarded.
    pub fn set_trace_config(&mut self, cfg: TraceConfig) {
        self.st.trace = TraceBus::new(cfg);
    }

    /// The fault schedule this run will replay.
    pub fn fault_schedule(&self) -> &FaultSchedule {
        &self.st.fault_schedule
    }

    /// The ground-truth model backing this run.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.st.shared.gt
    }

    /// The rack/node topology devices are addressed through.
    pub fn topology(&self) -> &Topology {
        &self.st.topo
    }

    /// Runs the experiment to completion and returns the results.
    pub fn run(self) -> ExperimentResult {
        self.run_scaled(1.0)
    }

    /// Runs with every job's iteration count multiplied by
    /// `iteration_scale` (tests use ≪1 to finish quickly).
    pub fn run_scaled(self, iteration_scale: f64) -> ExperimentResult {
        self.run_traced(iteration_scale).0
    }

    /// The single run entry point: executes to completion and returns
    /// the results together with the trace-bus summary (all-zero when
    /// tracing is disabled). `run`, `run_scaled`, and `run_with_log`
    /// are thin wrappers over this.
    pub fn run_traced(self, iteration_scale: f64) -> (ExperimentResult, TraceSummary) {
        let (result, bus) = self.execute(iteration_scale);
        (result, bus.summary())
    }

    /// Like [`ClusterEngine::run_scaled`], additionally returning the
    /// placement log `(task, chosen device, candidates)` for the §5.4
    /// optimality analysis. Forces placement retention on the trace bus
    /// and reconstructs the historical log shape from the structured
    /// `Placement` events.
    pub fn run_with_log(mut self, iteration_scale: f64) -> (ExperimentResult, PlacementLog) {
        let mut cfg = self.st.trace.config();
        cfg.enabled = true;
        cfg.keep_placements = true;
        self.st.trace = TraceBus::new(cfg);
        let (result, bus) = self.execute(iteration_scale);
        let log = bus
            .placements()
            .iter()
            .filter_map(|te| match &te.event {
                simcore::SimEvent::Placement {
                    task,
                    device,
                    candidates,
                } => Some((
                    TaskId(*task),
                    *device,
                    candidates.iter().map(|&(d, s)| (d, ServiceId(s))).collect(),
                )),
                _ => None,
            })
            .collect();
        (result, log)
    }

    /// The internal driver all public entry points funnel through.
    fn execute(mut self, iteration_scale: f64) -> (ExperimentResult, TraceBus) {
        self.st.iter_scale = iteration_scale.clamp(1e-6, 1.0);
        let wall_start = Instant::now();
        Admission.submit_jobs(&mut self.st);
        Stepper.schedule_initial_events(&mut self.st);
        let result = Stepper.run(&mut self.st, wall_start);
        let bus = std::mem::replace(&mut self.st.trace, TraceBus::disabled());
        // `MUDI_TRACE=1` dumps to stderr only: stdout (and the goldens
        // derived from it) stays byte-identical with tracing on.
        if bus.is_enabled() && simcore::env::is_set("MUDI_TRACE") {
            eprint!("{}", bus.summary());
            eprint!("{}", bus.render_tail(20));
        }
        (result, bus)
    }
}
