//! Control stage: analytic accrual and per-device resource control.
//!
//! Owns the closed-form integration of SLO violations and training
//! progress over piecewise-constant spans (`accrue`), the per-device
//! GP-LCB retune path (`reconfigure` and the Monitor/SLO-risk triggers
//! in `on_qps_change`), completion handling and rescheduling, memory
//! pause bookkeeping, stuck-device eviction, and the periodic
//! cluster-utilization sample. Retune accept/reject decisions and
//! training evictions are published on the trace bus.

use gpu_sim::{ReconfigPolicy, ResidentId};
use simcore::{normal_cdf, SimDuration, SimEvent, SimTime};

use crate::job::{JobId, JobState};
use crate::systems::{ConfigDecision, DeviceView, SystemKind};

use super::admission::Admission;
use super::state::{Event, SimState};

/// The control stage. Stateless: everything lives in [`SimState`].
pub(super) struct Control;

impl Control {
    // ------------------------------------------------------------------
    // Analytic accrual.
    // ------------------------------------------------------------------

    /// Integrates SLO violations and training progress for device `d`
    /// over `[last_accrue, now]` under the current configuration.
    pub fn accrue(&self, st: &mut SimState, now: SimTime, d: usize) {
        let span_start = st.dstate[d].last_accrue;
        let dt = now.since(span_start).as_secs();
        st.dstate[d].last_accrue = now;
        if dt <= 0.0 {
            return;
        }
        if !st.devices[d].is_up() {
            // Down device: traffic addressed to its replica is dropped
            // — and every dropped request is an SLO violation — unless
            // failover moved the base demand to survivors or a promoted
            // standby is serving it (the host books that traffic).
            // Carried failover traffic (`extra_qps`) is always dropped
            // here.
            let ds = &st.dstate[d];
            let base = if ds.rerouted.is_empty() && ds.standby_host.is_none() {
                ds.stashed_inference.as_ref().map_or(0.0, |i| i.qps)
            } else {
                0.0
            };
            let q = base + ds.extra_qps;
            if q > 0.0 {
                let generative = st.shared.gt.zoo().service(ds.service).generative;
                let m = st.services.entry(ds.service);
                m.requests += q * dt;
                m.violations += q * dt;
                if let Some(gp) = generative {
                    // Every token the dropped requests would have
                    // generated is booked as a violated token — dropped
                    // decode work is never silently lost.
                    let tokens = q * dt * gp.decode_tokens_mean;
                    m.tokens += tokens;
                    m.itl_violations += tokens;
                    m.ttft_violations += q * dt;
                }
                st.fmetrics.dropped_requests += q * dt;
            }
            let gt = &st.shared.gt;
            st.devices[d].record_utilization(gt, now);
            return;
        }
        let dev = &st.devices[d];
        let Some(inf) = dev.inference() else {
            return;
        };
        let (service, batch, frac, qps) = (inf.service, inf.batch, inf.gpu_fraction, inf.qps);
        let (colo_buf, colo_n) = dev.colo_for_inference_buf();
        let colo = &colo_buf[..colo_n];
        let slo = st.shared.gt.zoo().service(service).slo_secs();
        // Degraded devices deliver only `pf` of their effective compute:
        // the same model query at a proportionally smaller GPU share.
        let pf = dev.perf_factor();
        let frac = (frac * pf).max(0.01);

        // --- SLO violations. ---
        let generative = st.shared.gt.zoo().service(service).generative;
        if let Some(gp) = generative {
            // Generative decode accrual. The running continuous batch is
            // the steady-state fixed point of arrivals against the
            // batch-dependent iteration latency; the tuned batch acts as
            // the admission cap. Per-token (ITL) and TTFT targets then
            // accrue in closed form exactly like classifier SLOs: for a
            // generative spec `slo` *is* the p99 inter-token target.
            let bsz = st
                .shared
                .gt
                .steady_decode_batch(service, batch, frac, qps, colo);
            let (mean, sigma, p99) = dev.latency_profile(&st.shared.gt, service, bsz, frac, colo);
            st.dstate[d].last_p99 = Some(p99);
            // One iteration emits one token per resident sequence, so
            // the loop's token service rate is `bsz / mean`.
            let tok_rate = qps * gp.decode_tokens_mean;
            let util = if tok_rate > 0.0 {
                mean * tok_rate / bsz as f64
            } else {
                0.0
            };
            st.dstate[d].last_util = util;
            let p_itl = itl_violation_probability(slo, mean, sigma, util);
            // TTFT: chunked prefill of the mean prompt at the running
            // batch's iteration latency, under the same saturation ramp
            // (a saturated decode loop starves admission just as hard).
            let ttft_mean = gp.prefill_iterations() * mean;
            let p_ttft = itl_violation_probability(gp.ttft_slo_secs(), ttft_mean, sigma, util);
            st.dstate[d].last_pviol = p_itl.max(p_ttft);
            let requests = qps * dt;
            let tokens = tok_rate * dt;
            let m = st.services.entry(service);
            m.requests += requests;
            // The request-level violation of a generative service is the
            // TTFT miss, so request-weighted aggregates stay comparable
            // across mixed classifier + LLM fleets.
            m.violations += requests * p_ttft;
            m.ttft_violations += requests * p_ttft;
            m.tokens += tokens;
            m.itl_violations += tokens * p_itl;
            m.p99_stats.record(p99);
        } else {
            let (mean, sigma, p99) = dev.latency_profile(&st.shared.gt, service, batch, frac, colo);
            st.dstate[d].last_p99 = Some(p99);
            st.dstate[d].last_util = if qps > 0.0 {
                mean / (batch as f64 / qps)
            } else {
                0.0
            };
            // Through the per-device memo: bit-identical to the direct
            // call, and a hit when the sharded stepper's speculation phase
            // (or the previous span) already computed this configuration.
            let p_violation = st.dstate[d].vp_cache.get(qps, batch, slo, mean, sigma);
            st.dstate[d].last_pviol = p_violation;
            let requests = qps * dt;
            let m = st.services.entry(service);
            m.requests += requests;
            m.violations += requests * p_violation;
            m.p99_stats.record(p99);
        }
        // Failover traffic served here counts toward the reroute ledger.
        let extra = st.dstate[d].extra_qps.min(qps);
        if extra > 0.0 {
            st.fmetrics.rerouted_requests += extra * dt;
        }

        // --- Warm-standby accounting. ---
        if let Some(s) = dev.standby() {
            // The reserved slice is charged for the whole span, active
            // or idle: the pool's standing GPU% cost.
            st.fmetrics.standby_reserved_gpu_secs += s.reserve_fraction * dt;
            if s.is_active() {
                let (s_service, s_batch, s_qps) = (s.service, s.batch, s.qps);
                let s_frac = (s.reserve_fraction * pf).max(0.01);
                let (s_colo_buf, s_colo_n) = dev.colo_for_standby_buf();
                let s_colo = &s_colo_buf[..s_colo_n];
                let s_slo = st.shared.gt.zoo().service(s_service).slo_secs();
                let (s_mean, s_sigma, s_p99) =
                    dev.standby_latency_profile(&st.shared.gt, s_service, s_batch, s_frac, s_colo);
                let p_viol = violation_probability(s_qps, s_batch, s_slo, s_mean, s_sigma);
                let m = st.services.entry(s_service);
                m.requests += s_qps * dt;
                m.violations += s_qps * dt * p_viol;
                m.p99_stats.record(s_p99);
                st.fmetrics.standby_served_requests += s_qps * dt;
            }
        }

        // --- Training progress. ---
        if !st.dstate[d].training_paused {
            // Pooled scratch: empty between events, capacity retained.
            let mut advanced = std::mem::take(&mut st.scratch_advance);
            for proc in dev.trainings() {
                // A restarting process makes no progress until its
                // restart completes; clip the span accordingly.
                let run_dt = match st.dstate[d]
                    .restarting
                    .iter()
                    .find(|(id, _)| *id == proc.id)
                {
                    Some(&(_, until)) => now.since(until.max(span_start)).as_secs().max(0.0),
                    None => dt,
                };
                if run_dt <= 0.0 {
                    continue;
                }
                let (view, vn) = dev.colo_for_training_buf(proc.id);
                let eff = (proc.gpu_fraction * pf).max(1e-3);
                let iter = st.shared.gt.training_iteration(proc.task, eff, &view[..vn]);
                let slow = dev.memory().training_slowdown(proc.id);
                // Checkpoint writes steal a fixed fraction of the run
                // time (1.0 when writes are free).
                let ck_eff = st
                    .ckpt
                    .get(proc.id.0 as usize)
                    .map_or(1.0, |c| c.efficiency());
                advanced.push((proc.id, run_dt * ck_eff / (iter * slow), run_dt));
            }
            for &(rid, iters, run_dt) in &advanced {
                if let Some(job) = st.jobs.get_mut(rid.0 as usize) {
                    let before = job.completed_iterations;
                    job.completed_iterations += iters;
                    let after = job.completed_iterations;
                    if let Some(ck) = st.ckpt.get_mut(rid.0 as usize) {
                        ck.on_progress(run_dt, before, after);
                    }
                }
                if let Some(proc) = st.devices[d].training_mut(rid) {
                    proc.advance(iters as u64);
                }
            }
            advanced.clear();
            st.scratch_advance = advanced;
        }

        // Utilization integrators see the (constant) current state.
        let gt = &st.shared.gt;
        st.devices[d].record_utilization(gt, now);
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    /// A training job's completion event fires. Returns `true` when the
    /// job actually finished (the stepper tracks the last finish time).
    pub fn on_completion(&self, st: &mut SimState, now: SimTime, job: JobId, epoch: u64) -> bool {
        let device = match st.jobs[job.0 as usize].device {
            Some(d) => d,
            None => return false,
        };
        if st.dstate[device].epoch != epoch {
            return false; // Stale event; a reconfiguration rescheduled it.
        }
        self.accrue(st, now, device);
        let j = &st.jobs[job.0 as usize];
        if j.remaining_iterations() > 1.0 {
            // Progress drifted from the estimate (noise, pauses):
            // reschedule from the true remaining work.
            self.reschedule_completions(st, now, device);
            return false;
        }
        let rid = ResidentId(job.0);
        st.devices[device].remove_training(now, rid);
        st.jobs[job.0 as usize].finish(now);
        let est = now - st.jobs[job.0 as usize].submitted;
        st.fair.record(st.jobs[job.0 as usize].class, est.as_secs());
        let cap = st.applied_share_cap(now, device);
        st.devices[device].rebalance_training_fractions(cap);
        self.refresh_memory_pause(st, now, device);
        self.reconfigure(st, now, device);
        Admission.try_dispatch(st, now);
        true
    }

    /// A replica's QPS segment rolls over; doubles as the Monitor check
    /// (§5.3.2) and the SLO-risk retune trigger.
    pub fn on_qps_change(&self, st: &mut SimState, now: SimTime, d: usize) {
        self.accrue(st, now, d);
        let (dwell, raw_qps) = st.dstate[d].qps_gen.next_segment();
        let burst = st.burst_multiplier(now);
        let rate_scale = st
            .shared
            .gt
            .zoo()
            .service(st.dstate[d].service)
            .request_rate_scale();
        let qps = raw_qps * st.config.load_multiplier * burst * rate_scale;
        if !st.devices[d].is_up() {
            // The replica is down but demand keeps fluctuating. If the
            // traffic was not failed over, the drop rate follows demand;
            // if it was, survivors keep serving the frozen failover
            // share and the new demand level applies at repair.
            if st.dstate[d].rerouted.is_empty() {
                if let Some(stash) = st.dstate[d].stashed_inference.as_mut() {
                    stash.qps = qps;
                }
                // An active standby keeps tracking the demand it covers.
                if let Some(h) = st.dstate[d].standby_host {
                    if st.devices[h].is_up() {
                        self.accrue(st, now, h);
                        st.devices[h].set_standby_qps(&st.shared.gt, now, qps);
                    }
                }
            }
            st.events.schedule_at(
                now + dwell.max(SimDuration::from_secs(0.5)),
                Event::QpsChange(d),
            );
            return;
        }
        st.devices[d].set_inference_qps(&st.shared.gt, now, qps + st.dstate[d].extra_qps);

        // Monitor check (§5.3.2): retune when drift exceeds 50 %.
        let triggered = st.dstate[d].monitor.observe_qps(qps).is_some();
        // SLO-risk triggers (§5.3.2): tail latency near the SLO, or the
        // replica's service rate close to the arrival rate (queueing
        // pressure a real monitor would see as rising latency).
        let throttled = now.since(st.dstate[d].last_risk_tune).as_secs() <= 30.0;
        let risk = !throttled
            && (st.dstate[d]
                .last_p99
                .map(|p| p > 0.95 * st.device_slo(d))
                .unwrap_or(false)
                || st.dstate[d].last_util > 0.85
                || st.dstate[d].last_pviol > 0.02);
        if triggered || risk {
            if risk {
                st.dstate[d].last_risk_tune = now;
            }
            self.reconfigure(st, now, d);
        }

        // Cap the next dwell so bursts (Fig. 16) are noticed promptly.
        let mut next = dwell;
        if let Some(b) = &st.config.burst {
            if let Some(t) = b.next_change_after(now) {
                next = next.min(t - now + SimDuration::from_secs(0.1));
            }
        }
        st.events.schedule_at(
            now + next.max(SimDuration::from_secs(0.5)),
            Event::QpsChange(d),
        );
    }

    /// Periodic cluster-utilization sample.
    pub fn on_util_sample(&self, st: &mut SimState, now: SimTime) {
        let mut sm = 0.0;
        let mut mem = 0.0;
        for dev in &st.devices {
            sm += dev.sm_utilization(&st.shared.gt);
            mem += dev.memory().utilization();
        }
        let n = st.devices.len() as f64;
        st.util_series.push((now.as_secs(), sm / n, mem / n));
        if !st.all_done() {
            st.events.schedule_in(
                SimDuration::from_secs(st.config.util_sample_secs),
                Event::UtilSample,
            );
        }
    }

    /// The Retune heartbeat fires for a paused device: re-evaluate, and
    /// after 30 stuck minutes evict (systems without unified memory).
    pub fn on_retune(&self, st: &mut SimState, now: SimTime, d: usize) {
        st.dstate[d].retune_pending = false;
        if st.dstate[d].training_paused {
            self.reconfigure(st, now, d);
            // Systems without unified-memory swapping can
            // stay overcommitted indefinitely (e.g. a
            // static split that never shrinks); after 30
            // simulated minutes the operator evicts the
            // training task back to the queue, as a real
            // cluster would.
            let stuck = st.dstate[d]
                .paused_since
                .map(|t0| now.since(t0).as_secs() > 1800.0)
                .unwrap_or(false);
            if st.dstate[d].training_paused && stuck && !st.config.system.manages_memory() {
                self.evict_trainings(st, now, d);
            }
        }
    }

    // ------------------------------------------------------------------
    // Configuration.
    // ------------------------------------------------------------------

    /// The end-to-end P99 a latency monitor would measure on device
    /// `d`: batch P99 plus tail fill wait, inflated by queueing once
    /// utilization approaches 1 (feedback systems like GSLICE consume
    /// this signal).
    pub fn observed_p99(&self, st: &SimState, d: usize) -> Option<f64> {
        let p99 = st.dstate[d].last_p99?;
        let inf = st.devices[d].inference()?;
        let fill = if inf.qps > 0.0 {
            inf.batch as f64 / inf.qps
        } else {
            0.0
        };
        let queue_factor = 1.0 + 10.0 * (st.dstate[d].last_util - 0.85).max(0.0);
        Some((p99 + fill * 5.0 / 6.0) * queue_factor)
    }

    /// Runs the system's configure step for device `d` and applies the
    /// decision: batch (free), fraction (visible downtime accounted as
    /// violated requests), training pause state, and memory effects.
    pub fn reconfigure(&self, st: &mut SimState, now: SimTime, d: usize) {
        if !st.devices[d].is_up() {
            return; // Nothing to tune on a down device.
        }
        self.accrue(st, now, d);
        // The task list rides in a pooled vector (taken here, returned
        // after configure) so a steady-state retune never allocates.
        let mut tasks = std::mem::take(&mut st.scratch_tasks);
        let dev = &st.devices[d];
        let inf = dev.inference().expect("replica deployed");
        tasks.extend(dev.trainings().iter().map(|t| t.task));
        let view = DeviceView {
            device: d,
            service: inf.service,
            qps: inf.qps,
            slo_secs: st.shared.gt.zoo().service(inf.service).slo_secs(),
            tasks,
            batch: inf.batch,
            fraction: inf.gpu_fraction,
            measured_p99: self.observed_p99(st, d),
            mem_headroom_gb: dev.memory().capacity_gb() - dev.memory().total_demand_gb(),
        };
        let qps = inf.qps;
        let old_fraction = inf.gpu_fraction;
        let mut decision: ConfigDecision =
            st.shared
                .system
                .configure(&st.shared.gt, &view, &mut st.shared.rng);
        let mut tasks = view.tasks;
        tasks.clear();
        st.scratch_tasks = tasks;
        if decision.bo_iterations > 0 {
            st.bo_iterations.push(decision.bo_iterations);
        }
        // A standby's reserved slice is invisible to the tuner; clamp so
        // the primary plus the reserve never overcommits the device.
        decision.clamp_for_reserve(st.devices[d].standby_reserve());

        // Apply the batch (free) and memory demand.
        st.devices[d].set_inference_batch(&st.shared.gt, now, decision.batch);

        // Apply the fraction; a change costs visible downtime, accrued
        // as violated requests at the current QPS. Hysteresis: tiny
        // adjustments are not worth an instance hand-off — keep the old
        // partition unless the move exceeds 5 GPU-percentage points or
        // shrinks below a requirement increase.
        if (decision.fraction - old_fraction).abs() > 0.05
            || (decision.fraction > old_fraction && decision.pause_training)
        {
            st.devices[d].set_inference_fraction(decision.fraction);
            let downtime = match st.config.system {
                SystemKind::Gslice | SystemKind::Gpulets | SystemKind::MuxFlow => {
                    SimDuration::from_secs(1.0)
                }
                _ => ReconfigPolicy::ShadowInstance.visible_downtime(),
            };
            let svc = st.devices[d].inference().expect("replica").service;
            let m = st.services.entry(svc);
            let lost = qps * downtime.as_secs();
            m.requests += lost;
            m.violations += lost;
            st.trace.emit_with(now, || SimEvent::RetuneApplied {
                device: d,
                batch: decision.batch,
                old_fraction,
                new_fraction: decision.fraction,
                pause_training: decision.pause_training,
            });
        } else {
            st.trace.emit_with(now, || SimEvent::RetuneRejected {
                device: d,
                fraction_delta: decision.fraction - old_fraction,
            });
        }
        st.dstate[d].training_share_cap = decision.training_share_cap;
        // The SLO circuit-breaker sheds best-effort training share while
        // the device is post-failure degraded.
        let cap = st.applied_share_cap(now, d);
        st.devices[d].rebalance_training_fractions(cap);

        // Pause bookkeeping: SLO infeasibility (any system) or memory
        // overflow (systems without Mudi's Memory Manager). A paused
        // device re-evaluates soon — pausing is meant to be transient
        // ("until suitable resources become available", §5.3.2).
        st.dstate[d].training_paused = decision.pause_training;
        self.refresh_memory_pause(st, now, d);
        if st.dstate[d].training_paused {
            if st.dstate[d].paused_since.is_none() {
                st.dstate[d].paused_since = Some(now);
            }
            self.schedule_retune(st, d);
        } else {
            st.dstate[d].paused_since = None;
        }
        st.dstate[d].monitor.mark_tuned(qps);
        self.reschedule_completions(st, now, d);
    }

    /// For systems without unified-memory swapping, training cannot run
    /// while the device is overcommitted.
    pub fn refresh_memory_pause(&self, st: &mut SimState, now: SimTime, d: usize) {
        if !st.config.system.manages_memory() && st.devices[d].memory().is_overflowed() {
            if !st.dstate[d].training_paused {
                st.dstate[d].training_paused = true;
                // Keep the original pause start across reconfigure's
                // transient unpause/repause so eviction can trigger.
                if st.dstate[d].paused_since.is_none() {
                    st.dstate[d].paused_since = Some(now);
                }
                // Memory pauses need their own re-evaluation heartbeat:
                // nothing else may touch this device for a long time.
                self.schedule_retune(st, d);
            }
        } else if !st.config.system.manages_memory() {
            // Overflow cleared: resume unless paused for SLO reasons —
            // heuristic systems only pause for memory.
            st.dstate[d].training_paused = false;
            st.dstate[d].paused_since = None;
        }
    }

    /// Schedules a single pending Retune heartbeat for `d`.
    pub fn schedule_retune(&self, st: &mut SimState, d: usize) {
        if !st.dstate[d].retune_pending {
            st.dstate[d].retune_pending = true;
            st.events
                .schedule_in(SimDuration::from_secs(60.0), Event::Retune(d));
        }
    }

    /// Evicts every training resident of `d` back to the pending queue
    /// (keeping their progress), then redistributes them.
    pub fn evict_trainings(&self, st: &mut SimState, now: SimTime, d: usize) {
        self.accrue(st, now, d);
        let ids: Vec<ResidentId> = st.devices[d].trainings().iter().map(|t| t.id).collect();
        st.trace.emit_with(now, || SimEvent::TrainingEvicted {
            device: d,
            jobs: ids.len(),
        });
        for rid in ids {
            st.devices[d].remove_training(now, rid);
            let job = &mut st.jobs[rid.0 as usize];
            job.state = JobState::Queued;
            job.device = None;
            st.push_queue_item(JobId(rid.0));
        }
        st.dstate[d].training_paused = false;
        st.dstate[d].paused_since = None;
        st.dstate[d].epoch += 1; // Invalidate stale completions.
        Admission.try_dispatch(st, now);
    }

    /// Re-derives completion events for every training resident on `d`
    /// from its current progress and rate; bumps the epoch so stale
    /// events are ignored.
    pub fn reschedule_completions(&self, st: &mut SimState, now: SimTime, d: usize) {
        st.dstate[d].epoch += 1;
        let epoch = st.dstate[d].epoch;
        if st.dstate[d].training_paused {
            return; // No completion while paused; resume reschedules.
        }
        let dev = &st.devices[d];
        let pf = dev.perf_factor();
        if pf <= 0.0 {
            return; // Down: completions resume at repair.
        }
        // Pooled scratch: empty between events, capacity retained.
        let mut to_schedule = std::mem::take(&mut st.scratch_schedule);
        for proc in dev.trainings() {
            let job = &st.jobs[proc.id.0 as usize];
            let (view, vn) = dev.colo_for_training_buf(proc.id);
            let eff = (proc.gpu_fraction * pf).max(1e-3);
            let iter = st.shared.gt.training_iteration(proc.task, eff, &view[..vn]);
            let slow = dev.memory().training_slowdown(proc.id);
            let ck_eff = st
                .ckpt
                .get(proc.id.0 as usize)
                .map_or(1.0, |c| c.efficiency());
            let mut remaining = job.remaining_iterations() * iter * slow / ck_eff;
            // A restarting process only resumes once its restart ends.
            if let Some(&(_, until)) = st.dstate[d]
                .restarting
                .iter()
                .find(|(id, _)| *id == proc.id)
            {
                remaining += until.since(now).as_secs().max(0.0);
            }
            to_schedule.push((proc.id, remaining.max(1e-3)));
        }
        for &(rid, secs) in &to_schedule {
            // Completions live on the running device's home shard.
            st.events.schedule_at_on(
                d,
                now + SimDuration::from_secs(secs),
                Event::JobCompletion {
                    job: JobId(rid.0),
                    epoch,
                },
            );
        }
        to_schedule.clear();
        st.scratch_schedule = to_schedule;
    }
}

/// Per-request SLO-violation probability under a constant
/// configuration.
///
/// A request waits `u · b/W` for its batch to fill (`u` its position)
/// and then experiences the log-normal batch latency `L · ε`. The
/// probability is averaged over three batch positions; an unstable
/// service (`L ≥ b/W`, batches finishing slower than they form) is
/// driven toward certain violation.
/// Per-token SLO-violation probability for a continuous-batching
/// decode loop: the log-normal iteration latency against the target,
/// under the same >95 % utilization instability ramp as
/// [`violation_probability`] (a saturated loop backs tokens up and
/// eventually violates every one). There is no batch-fill wait term —
/// in continuous batching the next token follows the previous
/// iteration directly. Also prices TTFT misses, with `mean` the
/// chunked-prefill latency and `slo` the TTFT target.
pub fn itl_violation_probability(slo: f64, mean: f64, sigma: f64, util: f64) -> f64 {
    let mut p = if slo <= 0.0 || mean <= 0.0 {
        1.0
    } else {
        let z = (slo / mean).ln() / sigma.max(1e-6);
        1.0 - normal_cdf(z)
    };
    if util > 0.95 {
        p = p.max(((util - 0.95) * 2.5).min(1.0));
    }
    p.clamp(0.0, 1.0)
}

pub fn violation_probability(qps: f64, batch: u32, slo: f64, mean: f64, sigma: f64) -> f64 {
    if qps <= 0.0 {
        return 0.0;
    }
    let fill = batch as f64 / qps;
    let mut p = 0.0;
    for u in [1.0 / 6.0, 0.5, 5.0 / 6.0] {
        let budget = slo - u * fill;
        p += if budget <= 0.0 {
            1.0
        } else {
            let z = (budget / mean).ln() / sigma.max(1e-6);
            1.0 - normal_cdf(z)
        };
    }
    let mut p = p / 3.0;
    // Stability: sustained utilization near or above 1 grows the queue
    // and eventually violates every request; the penalty ramps from
    // 95 % utilization (transient queueing absorbs brief overloads).
    let util = mean / fill;
    if util > 0.95 {
        p = p.max(((util - 0.95) * 2.5).min(1.0));
    }
    p.clamp(0.0, 1.0)
}
