//! Control stage: analytic accrual and per-device resource control.
//!
//! Owns the closed-form integration of SLO violations and training
//! progress over piecewise-constant spans (`accrue`), the per-device
//! GP-LCB retune path (`reconfigure` and the Monitor/SLO-risk triggers
//! in `on_qps_change`), completion handling and rescheduling, memory
//! pause bookkeeping, stuck-device eviction, and the periodic
//! cluster-utilization sample. Retune accept/reject decisions and
//! training evictions are published on the trace bus.
//!
//! The per-device handlers are free functions over [`LaneCtx`] so the
//! parallel lane phase and the serial phase execute the *same code*:
//! a lane handler only touches its own devices, draws from per-device
//! substreams ([`super::state::DeviceState::retune_rng`]), books floats
//! into per-device accumulators ([`super::state::DevAccum`]), and
//! defers every shared-state effect as an [`OutMsg`] envelope. The
//! [`Control`] methods are the serial-phase entry points: thin
//! wrappers that build the lane view for the target device and drain
//! its outbox immediately.

use gpu_sim::{ReconfigPolicy, ResidentId};
use simcore::{normal_cdf, SimDuration, SimEvent, SimTime};

use crate::job::{JobId, JobState};
use crate::systems::{ConfigDecision, DeviceView, SystemKind};

use super::admission::Admission;
use super::shard::OutMsg;
use super::state::{Event, LaneCtx, SimState};

/// The control stage. Stateless: everything lives in [`SimState`].
pub(super) struct Control;

// ----------------------------------------------------------------------
// Lane handlers: the single implementation of per-device control,
// executed by the parallel lane phase and (through the `Control`
// wrappers) by the serial phase.
// ----------------------------------------------------------------------

/// Integrates SLO violations and training progress for device `d`
/// over `[last_accrue, now]` under the current configuration.
///
/// Training progress lands as a deferred [`OutMsg::Progress`] envelope
/// (the job/checkpoint tables are shared state); the resident's own
/// iteration counter advances in-lane so colocation views stay fresh.
pub(super) fn accrue(ctx: &mut LaneCtx, now: SimTime, d: usize) {
    let li = d - ctx.base;
    let span_start = ctx.dstate[li].last_accrue;
    let dt = now.since(span_start).as_secs();
    if dt <= 0.0 {
        // Nothing to integrate. Checked *before* the watermark update:
        // a serial-phase caller clamps to the watermark, so `now` can
        // tie it but must never regress it.
        return;
    }
    ctx.dstate[li].last_accrue = now;
    if !ctx.devices[li].is_up() {
        // Down device: traffic addressed to its replica is dropped
        // — and every dropped request is an SLO violation — unless
        // failover moved the base demand to survivors or a promoted
        // standby is serving it. Standby-served demand is booked
        // *here*, on the covered device's own lane: this lane tracks
        // the stash QPS trajectory exactly (the host's mirror lags by
        // up to an epoch window), so dropped + served mass conserves
        // bit-exactly under any partition. Carried failover traffic
        // (`extra_qps`) is always dropped here.
        let ds = &ctx.dstate[li];
        let covered = ds.standby_host.is_some();
        let base = if ds.rerouted.is_empty() {
            ds.stashed_inference.as_ref().map_or(0.0, |i| i.qps)
        } else {
            0.0
        };
        let dropped = if covered { 0.0 } else { base } + ds.extra_qps;
        let served = if covered { base } else { 0.0 };
        let service = ds.service;
        let pviol = ds.standby_pviol;
        if dropped > 0.0 {
            let generative = ctx.gt.zoo().service(service).generative;
            let acc = &mut ctx.dstate[li].acc;
            let m = acc.svc_entry(service);
            m.requests += dropped * dt;
            m.violations += dropped * dt;
            if let Some(gp) = generative {
                // Every token the dropped requests would have
                // generated is booked as a violated token — dropped
                // decode work is never silently lost.
                let tokens = dropped * dt * gp.decode_tokens_mean;
                m.tokens += tokens;
                m.itl_violations += tokens;
                m.ttft_violations += dropped * dt;
            }
            acc.dropped_requests += dropped * dt;
        }
        if served > 0.0 {
            // Quality (violation probability) is frozen from the
            // host's profile at the last serial-phase refresh; the
            // request mass itself is exact.
            let acc = &mut ctx.dstate[li].acc;
            let m = acc.svc_entry(service);
            m.requests += served * dt;
            m.violations += served * dt * pviol;
            acc.standby_served_requests += served * dt;
        }
        ctx.devices[li].record_utilization(ctx.gt, now);
        return;
    }
    let dev = &ctx.devices[li];
    let Some(inf) = dev.inference() else {
        return;
    };
    let (service, batch, frac, qps) = (inf.service, inf.batch, inf.gpu_fraction, inf.qps);
    let (colo_buf, colo_n) = dev.colo_for_inference_buf();
    let colo = &colo_buf[..colo_n];
    let slo = ctx.gt.zoo().service(service).slo_secs();
    // Degraded devices deliver only `pf` of their effective compute:
    // the same model query at a proportionally smaller GPU share.
    let pf = dev.perf_factor();
    let frac = (frac * pf).max(0.01);

    // --- SLO violations. ---
    let generative = ctx.gt.zoo().service(service).generative;
    if let Some(gp) = generative {
        // Generative decode accrual. The running continuous batch is
        // the steady-state fixed point of arrivals against the
        // batch-dependent iteration latency; the tuned batch acts as
        // the admission cap. Per-token (ITL) and TTFT targets then
        // accrue in closed form exactly like classifier SLOs: for a
        // generative spec `slo` *is* the p99 inter-token target.
        let bsz = ctx.gt.steady_decode_batch(service, batch, frac, qps, colo);
        let (mean, sigma, p99) = dev.latency_profile(ctx.gt, service, bsz, frac, colo);
        ctx.dstate[li].last_p99 = Some(p99);
        // One iteration emits one token per resident sequence, so
        // the loop's token service rate is `bsz / mean`.
        let tok_rate = qps * gp.decode_tokens_mean;
        let util = if tok_rate > 0.0 {
            mean * tok_rate / bsz as f64
        } else {
            0.0
        };
        ctx.dstate[li].last_util = util;
        let p_itl = itl_violation_probability(slo, mean, sigma, util);
        // TTFT: chunked prefill of the mean prompt at the running
        // batch's iteration latency, under the same saturation ramp
        // (a saturated decode loop starves admission just as hard).
        let ttft_mean = gp.prefill_iterations() * mean;
        let p_ttft = itl_violation_probability(gp.ttft_slo_secs(), ttft_mean, sigma, util);
        ctx.dstate[li].last_pviol = p_itl.max(p_ttft);
        let requests = qps * dt;
        let tokens = tok_rate * dt;
        let m = ctx.dstate[li].acc.svc_entry(service);
        m.requests += requests;
        // The request-level violation of a generative service is the
        // TTFT miss, so request-weighted aggregates stay comparable
        // across mixed classifier + LLM fleets.
        m.violations += requests * p_ttft;
        m.ttft_violations += requests * p_ttft;
        m.tokens += tokens;
        m.itl_violations += tokens * p_itl;
        m.p99_stats.record(p99);
    } else {
        let (mean, sigma, p99) = dev.latency_profile(ctx.gt, service, batch, frac, colo);
        ctx.dstate[li].last_p99 = Some(p99);
        ctx.dstate[li].last_util = if qps > 0.0 {
            mean / (batch as f64 / qps)
        } else {
            0.0
        };
        // Through the per-device memo: bit-identical to the direct
        // call, and a hit whenever the previous span already computed
        // this configuration.
        let p_violation = ctx.dstate[li].vp_cache.get(qps, batch, slo, mean, sigma);
        ctx.dstate[li].last_pviol = p_violation;
        let requests = qps * dt;
        let m = ctx.dstate[li].acc.svc_entry(service);
        m.requests += requests;
        m.violations += requests * p_violation;
        m.p99_stats.record(p99);
    }
    // Failover traffic served here counts toward the reroute ledger.
    let extra = ctx.dstate[li].extra_qps.min(qps);
    if extra > 0.0 {
        ctx.dstate[li].acc.rerouted_requests += extra * dt;
    }

    // --- Warm-standby accounting. ---
    // The served *demand mass* is booked on the covered device's lane
    // (the only lane that tracks the stash QPS exactly); the host
    // charges the standing reserve and records latency quality.
    let dev = &ctx.devices[li];
    if let Some(s) = dev.standby() {
        // The reserved slice is charged for the whole span, active
        // or idle: the pool's standing GPU% cost.
        let reserved = s.reserve_fraction * dt;
        if s.is_active() {
            let (s_service, s_batch) = (s.service, s.batch);
            let s_frac = (s.reserve_fraction * pf).max(0.01);
            let (s_colo_buf, s_colo_n) = dev.colo_for_standby_buf();
            let s_colo = &s_colo_buf[..s_colo_n];
            let (_s_mean, _s_sigma, s_p99) =
                dev.standby_latency_profile(ctx.gt, s_service, s_batch, s_frac, s_colo);
            let acc = &mut ctx.dstate[li].acc;
            acc.svc_entry(s_service).p99_stats.record(s_p99);
        }
        ctx.dstate[li].acc.standby_reserved_gpu_secs += reserved;
    }

    // --- Training progress. ---
    if !ctx.dstate[li].training_paused {
        // Pooled scratch: empty between events, capacity retained.
        let mut advanced = std::mem::take(&mut ctx.lane.scratch_advance);
        let dev = &ctx.devices[li];
        for proc in dev.trainings() {
            // A restarting process makes no progress until its
            // restart completes; clip the span accordingly.
            let run_dt = match ctx.dstate[li]
                .restarting
                .iter()
                .find(|(id, _)| *id == proc.id)
            {
                Some(&(_, until)) => now.since(until.max(span_start)).as_secs().max(0.0),
                None => dt,
            };
            if run_dt <= 0.0 {
                continue;
            }
            let (view, vn) = dev.colo_for_training_buf(proc.id);
            let eff = (proc.gpu_fraction * pf).max(1e-3);
            let iter = ctx.gt.training_iteration(proc.task, eff, &view[..vn]);
            let slow = dev.memory().training_slowdown(proc.id);
            // Checkpoint writes steal a fixed fraction of the run
            // time (1.0 when writes are free).
            let ck_eff = ctx
                .ckpt
                .get(proc.id.0 as usize)
                .map_or(1.0, |c| c.efficiency());
            advanced.push((proc.id, run_dt * ck_eff / (iter * slow), run_dt));
        }
        for &(rid, iters, run_dt) in &advanced {
            // The job/checkpoint tables are shared: defer. The
            // resident's own counter advances in-lane so this lane's
            // subsequent spans see fresh colocation state.
            ctx.push_msg(
                now,
                d,
                OutMsg::Progress {
                    job: JobId(rid.0),
                    iters,
                    run_dt,
                },
            );
            if let Some(proc) = ctx.devices[li].training_mut(rid) {
                proc.advance(iters as u64);
            }
        }
        advanced.clear();
        ctx.lane.scratch_advance = advanced;
    }

    // Utilization integrators see the (constant) current state.
    ctx.devices[li].record_utilization(ctx.gt, now);
}

/// A replica's QPS segment rolls over; doubles as the Monitor check
/// (§5.3.2) and the SLO-risk retune trigger.
pub(super) fn on_qps_change(ctx: &mut LaneCtx, now: SimTime, d: usize) {
    accrue(ctx, now, d);
    let li = d - ctx.base;
    let (dwell, raw_qps) = ctx.dstate[li].qps_gen.next_segment();
    let burst = ctx.burst_multiplier(now);
    let rate_scale = ctx
        .gt
        .zoo()
        .service(ctx.dstate[li].service)
        .request_rate_scale();
    let qps = raw_qps * ctx.config.load_multiplier * burst * rate_scale;
    if !ctx.devices[li].is_up() {
        // The replica is down but demand keeps fluctuating. If the
        // traffic was not failed over, the drop rate follows demand;
        // if it was, survivors keep serving the frozen failover
        // share and the new demand level applies at repair.
        if ctx.dstate[li].rerouted.is_empty() {
            if let Some(stash) = ctx.dstate[li].stashed_inference.as_mut() {
                stash.qps = qps;
            }
            // An active standby keeps tracking the demand it covers.
            // The host may live on another lane: deferred, with the
            // host's liveness re-checked at the barrier.
            if let Some(h) = ctx.dstate[li].standby_host {
                ctx.push_msg(now, d, OutMsg::StandbyQps { host: h, qps });
            }
        }
        ctx.schedule(
            d,
            now + dwell.max(SimDuration::from_secs(0.5)),
            Event::QpsChange(d),
        );
        return;
    }
    let extra = ctx.dstate[li].extra_qps;
    ctx.devices[li].set_inference_qps(ctx.gt, now, qps + extra);

    // Monitor check (§5.3.2): retune when drift exceeds 50 %.
    let triggered = ctx.dstate[li].monitor.observe_qps(qps).is_some();
    // SLO-risk triggers (§5.3.2): tail latency near the SLO, or the
    // replica's service rate close to the arrival rate (queueing
    // pressure a real monitor would see as rising latency).
    let throttled = now.since(ctx.dstate[li].last_risk_tune).as_secs() <= 30.0;
    let risk = !throttled
        && (ctx.dstate[li]
            .last_p99
            .map(|p| p > 0.95 * ctx.device_slo(d))
            .unwrap_or(false)
            || ctx.dstate[li].last_util > 0.85
            || ctx.dstate[li].last_pviol > 0.02);
    if triggered || risk {
        if risk {
            ctx.dstate[li].last_risk_tune = now;
        }
        reconfigure(ctx, now, d);
    }

    // Cap the next dwell so bursts (Fig. 16) are noticed promptly.
    let mut next = dwell;
    if let Some(b) = &ctx.config.burst {
        if let Some(t) = b.next_change_after(now) {
            next = next.min(t - now + SimDuration::from_secs(0.1));
        }
    }
    ctx.schedule(
        d,
        now + next.max(SimDuration::from_secs(0.5)),
        Event::QpsChange(d),
    );
}

/// The Retune heartbeat fires for a paused device: re-evaluate, and
/// after 30 stuck minutes evict (systems without unified memory).
pub(super) fn on_retune(ctx: &mut LaneCtx, now: SimTime, d: usize) {
    let li = d - ctx.base;
    ctx.dstate[li].retune_pending = false;
    if ctx.dstate[li].training_paused {
        reconfigure(ctx, now, d);
        // Systems without unified-memory swapping can stay
        // overcommitted indefinitely (e.g. a static split that never
        // shrinks); after 30 simulated minutes the operator evicts
        // the training task back to the queue, as a real cluster
        // would. Eviction requeues into shared state: deferred, with
        // the stuck condition re-validated at the barrier.
        let stuck = ctx.dstate[li]
            .paused_since
            .map(|t0| now.since(t0).as_secs() > 1800.0)
            .unwrap_or(false);
        if ctx.dstate[li].training_paused && stuck && !ctx.config.system.manages_memory() {
            ctx.push_msg(now, d, OutMsg::EvictStuck { device: d });
        }
    }
}

/// The end-to-end P99 a latency monitor would measure on device
/// `d`: batch P99 plus tail fill wait, inflated by queueing once
/// utilization approaches 1 (feedback systems like GSLICE consume
/// this signal).
pub(super) fn observed_p99(ctx: &LaneCtx, d: usize) -> Option<f64> {
    let li = d - ctx.base;
    let p99 = ctx.dstate[li].last_p99?;
    let inf = ctx.devices[li].inference()?;
    let fill = if inf.qps > 0.0 {
        inf.batch as f64 / inf.qps
    } else {
        0.0
    };
    let queue_factor = 1.0 + 10.0 * (ctx.dstate[li].last_util - 0.85).max(0.0);
    Some((p99 + fill * 5.0 / 6.0) * queue_factor)
}

/// Runs the system's configure step for device `d` and applies the
/// decision: batch (free), fraction (visible downtime accounted as
/// violated requests), training pause state, and memory effects.
///
/// The tuner runs on the lane's own system replica and draws from the
/// device's `retune_rng` substream — the draws depend only on
/// `(seed, device, draw index)`, never on cross-device ordering.
pub(super) fn reconfigure(ctx: &mut LaneCtx, now: SimTime, d: usize) {
    let li = d - ctx.base;
    if !ctx.devices[li].is_up() {
        return; // Nothing to tune on a down device.
    }
    accrue(ctx, now, d);
    // The task list rides in a pooled vector (taken here, returned
    // after configure) so a steady-state retune never allocates.
    let mut tasks = std::mem::take(&mut ctx.lane.scratch_tasks);
    let measured_p99 = observed_p99(ctx, d);
    let dev = &ctx.devices[li];
    let inf = dev.inference().expect("replica deployed");
    tasks.extend(dev.trainings().iter().map(|t| t.task));
    let view = DeviceView {
        device: d,
        service: inf.service,
        qps: inf.qps,
        slo_secs: ctx.gt.zoo().service(inf.service).slo_secs(),
        tasks,
        batch: inf.batch,
        fraction: inf.gpu_fraction,
        measured_p99,
        mem_headroom_gb: dev.memory().capacity_gb() - dev.memory().total_demand_gb(),
    };
    let qps = inf.qps;
    let old_fraction = inf.gpu_fraction;
    let mut decision: ConfigDecision =
        ctx.lane
            .system
            .configure(ctx.gt, &view, &mut ctx.dstate[li].retune_rng);
    let mut tasks = view.tasks;
    tasks.clear();
    ctx.lane.scratch_tasks = tasks;
    if decision.bo_iterations > 0 {
        // The BO history is a shared run-level ledger: defer, so it
        // lands in (time, device, seq) order at the barrier.
        ctx.push_msg(
            now,
            d,
            OutMsg::Bo {
                iters: decision.bo_iterations,
            },
        );
    }
    // A standby's reserved slice is invisible to the tuner; clamp so
    // the primary plus the reserve never overcommits the device.
    decision.clamp_for_reserve(ctx.devices[li].standby_reserve());

    // Apply the batch (free) and memory demand.
    ctx.devices[li].set_inference_batch(ctx.gt, now, decision.batch);

    // Apply the fraction; a change costs visible downtime, accrued
    // as violated requests at the current QPS. Hysteresis: tiny
    // adjustments are not worth an instance hand-off — keep the old
    // partition unless the move exceeds 5 GPU-percentage points or
    // shrinks below a requirement increase.
    if (decision.fraction - old_fraction).abs() > 0.05
        || (decision.fraction > old_fraction && decision.pause_training)
    {
        ctx.devices[li].set_inference_fraction(decision.fraction);
        let downtime = match ctx.config.system {
            SystemKind::Gslice | SystemKind::Gpulets | SystemKind::MuxFlow => {
                SimDuration::from_secs(1.0)
            }
            _ => ReconfigPolicy::ShadowInstance.visible_downtime(),
        };
        let svc = ctx.devices[li].inference().expect("replica").service;
        let lost = qps * downtime.as_secs();
        let m = ctx.dstate[li].acc.svc_entry(svc);
        m.requests += lost;
        m.violations += lost;
        ctx.emit(now, || SimEvent::RetuneApplied {
            device: d,
            batch: decision.batch,
            old_fraction,
            new_fraction: decision.fraction,
            pause_training: decision.pause_training,
        });
    } else {
        ctx.emit(now, || SimEvent::RetuneRejected {
            device: d,
            fraction_delta: decision.fraction - old_fraction,
        });
    }
    ctx.dstate[li].training_share_cap = decision.training_share_cap;
    // The SLO circuit-breaker sheds best-effort training share while
    // the device is post-failure degraded.
    let cap = ctx.applied_share_cap(now, d);
    ctx.devices[li].rebalance_training_fractions(cap);

    // Pause bookkeeping: SLO infeasibility (any system) or memory
    // overflow (systems without Mudi's Memory Manager). A paused
    // device re-evaluates soon — pausing is meant to be transient
    // ("until suitable resources become available", §5.3.2).
    ctx.dstate[li].training_paused = decision.pause_training;
    refresh_memory_pause(ctx, now, d);
    if ctx.dstate[li].training_paused {
        if ctx.dstate[li].paused_since.is_none() {
            ctx.dstate[li].paused_since = Some(now);
        }
        schedule_retune(ctx, now, d);
    } else {
        ctx.dstate[li].paused_since = None;
    }
    ctx.dstate[li].monitor.mark_tuned(qps);
    reschedule_completions(ctx, now, d);
}

/// For systems without unified-memory swapping, training cannot run
/// while the device is overcommitted.
pub(super) fn refresh_memory_pause(ctx: &mut LaneCtx, now: SimTime, d: usize) {
    let li = d - ctx.base;
    if !ctx.config.system.manages_memory() && ctx.devices[li].memory().is_overflowed() {
        if !ctx.dstate[li].training_paused {
            ctx.dstate[li].training_paused = true;
            // Keep the original pause start across reconfigure's
            // transient unpause/repause so eviction can trigger.
            if ctx.dstate[li].paused_since.is_none() {
                ctx.dstate[li].paused_since = Some(now);
            }
            // Memory pauses need their own re-evaluation heartbeat:
            // nothing else may touch this device for a long time.
            schedule_retune(ctx, now, d);
        }
    } else if !ctx.config.system.manages_memory() {
        // Overflow cleared: resume unless paused for SLO reasons —
        // heuristic systems only pause for memory.
        ctx.dstate[li].training_paused = false;
        ctx.dstate[li].paused_since = None;
    }
}

/// Schedules a single pending Retune heartbeat for `d` (lane-local).
pub(super) fn schedule_retune(ctx: &mut LaneCtx, now: SimTime, d: usize) {
    let li = d - ctx.base;
    if !ctx.dstate[li].retune_pending {
        ctx.dstate[li].retune_pending = true;
        ctx.schedule(d, now + SimDuration::from_secs(60.0), Event::Retune(d));
    }
}

/// Re-derives completion events for every training resident on `d`
/// from its current progress and rate; bumps the epoch so stale
/// events are ignored. Completions are global events (they touch the
/// job table and the admission queue), so they travel as deferred
/// [`OutMsg::Completion`] envelopes and land on the global queue at
/// the barrier.
pub(super) fn reschedule_completions(ctx: &mut LaneCtx, now: SimTime, d: usize) {
    let li = d - ctx.base;
    ctx.dstate[li].epoch += 1;
    let epoch = ctx.dstate[li].epoch;
    if ctx.dstate[li].training_paused {
        return; // No completion while paused; resume reschedules.
    }
    let pf = ctx.devices[li].perf_factor();
    if pf <= 0.0 {
        return; // Down: completions resume at repair.
    }
    // Pooled scratch: empty between events, capacity retained.
    let mut to_schedule = std::mem::take(&mut ctx.lane.scratch_schedule);
    {
        let dev = &ctx.devices[li];
        for proc in dev.trainings() {
            let job = &ctx.jobs[proc.id.0 as usize];
            let (view, vn) = dev.colo_for_training_buf(proc.id);
            let eff = (proc.gpu_fraction * pf).max(1e-3);
            let iter = ctx.gt.training_iteration(proc.task, eff, &view[..vn]);
            let slow = dev.memory().training_slowdown(proc.id);
            let ck_eff = ctx
                .ckpt
                .get(proc.id.0 as usize)
                .map_or(1.0, |c| c.efficiency());
            let mut remaining = job.remaining_iterations() * iter * slow / ck_eff;
            // A restarting process only resumes once its restart ends.
            if let Some(&(_, until)) = ctx.dstate[li]
                .restarting
                .iter()
                .find(|(id, _)| *id == proc.id)
            {
                remaining += until.since(now).as_secs().max(0.0);
            }
            to_schedule.push((proc.id, remaining.max(1e-3)));
        }
    }
    for &(rid, secs) in &to_schedule {
        ctx.push_msg(
            now,
            d,
            OutMsg::Completion {
                job: JobId(rid.0),
                epoch,
                at: now + SimDuration::from_secs(secs),
            },
        );
    }
    to_schedule.clear();
    ctx.lane.scratch_schedule = to_schedule;
}

// ----------------------------------------------------------------------
// Serial-phase entry points.
// ----------------------------------------------------------------------

impl Control {
    /// Serial-phase accrual for device `d` (lane view + instant drain).
    pub fn accrue(&self, st: &mut SimState, now: SimTime, d: usize) {
        st.with_lane_of(d, |ctx| accrue(ctx, now, d));
    }

    /// Serial-phase reconfigure for device `d`.
    pub fn reconfigure(&self, st: &mut SimState, now: SimTime, d: usize) {
        st.with_lane_of(d, |ctx| reconfigure(ctx, now, d));
    }

    /// Violation probability of `host`'s active standby at its current
    /// mirrored QPS and colocation — the quality figure frozen into the
    /// covered device's [`DeviceState::standby_pviol`] at promote time
    /// and at each serial-phase mirror refresh. Returns `0.0` when the
    /// host has no active standby.
    pub fn standby_pviol(st: &SimState, host: usize) -> f64 {
        let dev = &st.devices[host];
        let Some(s) = dev.standby().filter(|s| s.is_active()) else {
            return 0.0;
        };
        let pf = dev.perf_factor();
        let frac = (s.reserve_fraction * pf).max(0.01);
        let (colo_buf, colo_n) = dev.colo_for_standby_buf();
        let colo = &colo_buf[..colo_n];
        let slo = st.shared.gt.zoo().service(s.service).slo_secs();
        let (mean, sigma, _p99) =
            dev.standby_latency_profile(&st.shared.gt, s.service, s.batch, frac, colo);
        violation_probability(s.qps, s.batch, slo, mean, sigma)
    }

    /// Serial-phase memory-pause refresh for device `d`.
    pub fn refresh_memory_pause(&self, st: &mut SimState, now: SimTime, d: usize) {
        st.with_lane_of(d, |ctx| refresh_memory_pause(ctx, now, d));
    }

    /// Serial-phase completion rescheduling for device `d`.
    pub fn reschedule_completions(&self, st: &mut SimState, now: SimTime, d: usize) {
        st.with_lane_of(d, |ctx| reschedule_completions(ctx, now, d));
    }

    /// A training job's completion event fires. Returns the finish
    /// time when the job actually finished (the stepper tracks the
    /// last finish for the makespan).
    pub fn on_completion(
        &self,
        st: &mut SimState,
        now: SimTime,
        job: JobId,
        epoch: u64,
    ) -> Option<SimTime> {
        let device = st.jobs[job.0 as usize].device?;
        if st.dstate[device].epoch != epoch {
            return None; // Stale event; a reconfiguration rescheduled it.
        }
        // The owning lane may have stepped past `now` this window.
        let t = st.dev_time(device, now);
        self.accrue(st, t, device);
        let j = &st.jobs[job.0 as usize];
        if j.remaining_iterations() > 1.0 {
            // Progress drifted from the estimate (noise, pauses,
            // barrier quantization): reschedule from the true
            // remaining work.
            self.reschedule_completions(st, t, device);
            return None;
        }
        let rid = ResidentId(job.0);
        st.devices[device].remove_training(t, rid);
        st.jobs[job.0 as usize].finish(t);
        let est = t - st.jobs[job.0 as usize].submitted;
        st.fair.record(st.jobs[job.0 as usize].class, est.as_secs());
        let cap = st.applied_share_cap(t, device);
        st.devices[device].rebalance_training_fractions(cap);
        self.refresh_memory_pause(st, t, device);
        self.reconfigure(st, t, device);
        Admission.try_dispatch(st, now);
        Some(t)
    }

    /// Periodic cluster-utilization sample (global: reads every
    /// device's integrators).
    ///
    /// The walk over every device is a pure read and dominates the
    /// serial phase at 100k devices, so it fans out over the worker
    /// pool. The chunking is a fixed 4096-device grid — independent of
    /// the shard partition — and the reduction adds chunk partials in
    /// index order, so the sampled means are bit-identical across
    /// every `(shards, workers)` grid point. The single-worker path
    /// walks the same chunk grid without allocating (the kernel's
    /// zero-allocation steady state covers this event).
    pub fn on_util_sample(&self, st: &mut SimState, now: SimTime) {
        const CHUNK: usize = 4096;
        let t0 = std::time::Instant::now();
        let workers = st.workers;
        let gt = &st.shared.gt;
        let (mut sm, mut mem) = (0.0, 0.0);
        if workers > 1 && st.devices.len() > CHUNK {
            struct SampleChunk<'a> {
                devices: &'a mut [gpu_sim::GpuDevice],
                sums: (f64, f64),
            }
            let mut work: Vec<SampleChunk> = Vec::with_capacity(st.devices.len() / CHUNK + 1);
            let mut rest = &mut st.devices[..];
            while !rest.is_empty() {
                let take = rest.len().min(CHUNK);
                let (chunk, tail) = rest.split_at_mut(take);
                work.push(SampleChunk {
                    devices: chunk,
                    sums: (0.0, 0.0),
                });
                rest = tail;
            }
            simcore::scoped_for_each_mut(&mut work, workers, |_, w| {
                let (mut cs, mut cm) = (0.0, 0.0);
                for dev in w.devices.iter() {
                    cs += dev.sm_utilization(gt);
                    cm += dev.memory().utilization();
                }
                w.sums = (cs, cm);
            });
            for w in &work {
                sm += w.sums.0;
                mem += w.sums.1;
            }
        } else {
            for chunk in st.devices.chunks(CHUNK) {
                let (mut cs, mut cm) = (0.0, 0.0);
                for dev in chunk {
                    cs += dev.sm_utilization(gt);
                    cm += dev.memory().utilization();
                }
                sm += cs;
                mem += cm;
            }
        }
        let n = st.devices.len() as f64;
        st.util_series.push((now.as_secs(), sm / n, mem / n));
        st.phase_sample_secs += t0.elapsed().as_secs_f64();
        if !st.all_done() {
            st.events.schedule_in(
                SimDuration::from_secs(st.config.util_sample_secs),
                Event::UtilSample,
            );
        }
    }

    /// Evicts every training resident of `d` back to the pending queue
    /// (keeping their progress), then redistributes them. Serial-only:
    /// touches the job table, the queue, and admission.
    pub fn evict_trainings(&self, st: &mut SimState, now: SimTime, d: usize) {
        self.accrue(st, now, d);
        let ids: Vec<ResidentId> = st.devices[d].trainings().iter().map(|t| t.id).collect();
        st.trace.emit_with(now, || SimEvent::TrainingEvicted {
            device: d,
            jobs: ids.len(),
        });
        for rid in ids {
            st.devices[d].remove_training(now, rid);
            let job = &mut st.jobs[rid.0 as usize];
            job.state = JobState::Queued;
            job.device = None;
            st.push_queue_item(JobId(rid.0));
        }
        st.dstate[d].training_paused = false;
        st.dstate[d].paused_since = None;
        st.dstate[d].epoch += 1; // Invalidate stale completions.
        Admission.try_dispatch(st, now);
    }
}

/// Per-request SLO-violation probability under a constant
/// configuration.
///
/// A request waits `u · b/W` for its batch to fill (`u` its position)
/// and then experiences the log-normal batch latency `L · ε`. The
/// probability is averaged over three batch positions; an unstable
/// service (`L ≥ b/W`, batches finishing slower than they form) is
/// driven toward certain violation.
/// Per-token SLO-violation probability for a continuous-batching
/// decode loop: the log-normal iteration latency against the target,
/// under the same >95 % utilization instability ramp as
/// [`violation_probability`] (a saturated loop backs tokens up and
/// eventually violates every one). There is no batch-fill wait term —
/// in continuous batching the next token follows the previous
/// iteration directly. Also prices TTFT misses, with `mean` the
/// chunked-prefill latency and `slo` the TTFT target.
pub fn itl_violation_probability(slo: f64, mean: f64, sigma: f64, util: f64) -> f64 {
    let mut p = if slo <= 0.0 || mean <= 0.0 {
        1.0
    } else {
        let z = (slo / mean).ln() / sigma.max(1e-6);
        1.0 - normal_cdf(z)
    };
    if util > 0.95 {
        p = p.max(((util - 0.95) * 2.5).min(1.0));
    }
    p.clamp(0.0, 1.0)
}

pub fn violation_probability(qps: f64, batch: u32, slo: f64, mean: f64, sigma: f64) -> f64 {
    if qps <= 0.0 {
        return 0.0;
    }
    let fill = batch as f64 / qps;
    let mut p = 0.0;
    for u in [1.0 / 6.0, 0.5, 5.0 / 6.0] {
        let budget = slo - u * fill;
        p += if budget <= 0.0 {
            1.0
        } else {
            let z = (budget / mean).ln() / sigma.max(1e-6);
            1.0 - normal_cdf(z)
        };
    }
    let mut p = p / 3.0;
    // Stability: sustained utilization near or above 1 grows the queue
    // and eventually violates every request; the penalty ramps from
    // 95 % utilization (transient queueing absorbs brief overloads).
    let util = mean / fill;
    if util > 0.95 {
        p = p.max(((util - 0.95) * 2.5).min(1.0));
    }
    p.clamp(0.0, 1.0)
}
