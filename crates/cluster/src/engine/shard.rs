//! Lane-local event scheduling and the parallel-commit envelope types.
//!
//! The parallel kernel partitions devices over rack-aligned shards
//! ([`simcore::ShardMap`]); each shard is an execution **lane** that
//! steps its own devices through an epoch window concurrently with the
//! other lanes. Everything a lane does is either
//!
//! * **device-local** — it touches only the lane's own `GpuDevice` /
//!   `DeviceState` slice and draws only from per-device named
//!   substreams (`substream("retune", d)`, `fork_indexed("qps", d)`),
//!   or
//! * **deferred** — it emits a typed [`OutMsg`] envelope stamped with a
//!   [`MergeKey`] `(time, device, seq)` into the lane's outbox.
//!
//! At the epoch barrier every outbox is concatenated, sorted by merge
//! key, and applied serially. The key is partition-invariant (it names
//! the *device* that produced the effect, never the shard), so the
//! commit order — and every downstream accumulation and draw — is
//! bit-identical across every `MUDI_SHARDS × MUDI_THREADS` point. The
//! worker count changes wall-clock time only.
//!
//! # Event routing
//!
//! Events split into two populations:
//!
//! * **Lane-local** (`QpsChange`, `Retune`, `SlowdownEnd`,
//!   `ProcessRestart`): concern exactly one device and touch only
//!   lane-local state. They live in the owning lane's [`EventLane`]
//!   queue and fire during the parallel phase, ordered by
//!   `(time, device, per-device seq)` within the lane.
//! * **Global** (`JobArrival`, `JobCompletion`, `UtilSample`, `Fault`,
//!   `DeviceRepair`, `StandbyPromote`): touch shared state (the job
//!   table, the queue, cross-device reroutes). They live in the single
//!   global [`ShardedEvents`] queue and fire in the serial phase after
//!   the barrier.
//!
//! Within one window a lane may advance a device past the firing time
//! of a later global event; the serial phase clamps per-device
//! timestamps to the device's accrual watermark (`SimState::dev_time`),
//! which keeps every device's timeline monotone. The window structure
//! itself is a pure function of the config (absolute multiples of
//! `shard_epoch_secs`), so this quantization is identical at every grid
//! point.

use simcore::{EventQueue, MergeKey, SimDuration, SimTime};

use super::control::violation_probability;
use super::state::Event;

/// Auto-sharding floor: below this device count a single lane wins
/// (the barrier machinery costs more than it saves).
pub(super) const AUTO_SHARD_MIN_DEVICES: usize = 4096;

/// A deferred cross-device or global effect, produced inside a lane
/// and applied serially at the epoch barrier in [`MergeKey`] order.
#[derive(Clone, Copy, Debug)]
pub(super) struct Envelope {
    /// `(time, emitting device, per-device seq)` — the commit order.
    pub key: MergeKey,
    /// The effect itself.
    pub msg: OutMsg,
}

/// The deferred effects a lane may emit. Each variant is applied by
/// `SimState::apply_envelope`; the apply is serial, so it may touch
/// any shared state.
#[derive(Clone, Copy, Debug)]
pub(super) enum OutMsg {
    /// Training progress accrued on a device: credit the job table and
    /// the checkpoint tracker. (The device-resident process counter
    /// was already advanced in-lane.)
    Progress {
        /// The job advancing.
        job: crate::job::JobId,
        /// Iterations completed over the accrual span.
        iters: f64,
        /// Running (unpaused, non-restart) seconds of the span.
        run_dt: f64,
    },
    /// A device re-estimated a training completion: (re)schedule the
    /// global `JobCompletion` event.
    Completion {
        /// The completing job.
        job: crate::job::JobId,
        /// The scheduling epoch stamped into the event (stale-epoch
        /// completions are ignored at fire time).
        epoch: u64,
        /// Estimated completion time.
        at: SimTime,
    },
    /// A replica's QPS segment changed while a warm standby mirrors
    /// it: propagate the new rate to the standby host.
    StandbyQps {
        /// The standby host mirroring the service.
        host: usize,
        /// The new base QPS to mirror.
        qps: f64,
    },
    /// A retune found training stuck (paused > 30 min with no memory
    /// manager): evict the device's trainings. Re-validated at apply
    /// time — the serial phase may have unstuck the device meanwhile.
    EvictStuck {
        /// The stuck device.
        device: usize,
    },
    /// A GP-LCB retune ran `iters` acquisition iterations (overhead
    /// ledger bookkeeping).
    Bo {
        /// Acquisition iterations of this retune.
        iters: usize,
    },
}

/// One lane's event queue: a plain [`EventQueue`] whose tie-break
/// sequence packs `(local device index, per-device counter)`, so pops
/// at equal times come back in ascending-device order and, per device,
/// in schedule order — a partition-invariant order (the global
/// interleaving of *lane* events at equal times across lanes is
/// irrelevant: their effects are device-local by construction).
pub(super) struct EventLane {
    queue: EventQueue<Event>,
    /// First device index this lane owns (ranges are contiguous).
    base: usize,
    /// Per-device schedule counters (event tie-break).
    seqs: Vec<u64>,
    /// Per-device envelope emission counters ([`MergeKey::seq`]).
    msg_seqs: Vec<u64>,
    /// Per-device clocks: the firing time of the device's last popped
    /// event. Past-time schedules clamp to the *device* clock — never
    /// the lane clock, which depends on how many devices share the
    /// lane and would make the clamp partition-sensitive.
    clocks: Vec<SimTime>,
}

/// The device a lane-local event belongs to. Lane queues only ever
/// hold the four device-local variants; anything else is a routing
/// bug caught by the stepper's dispatch assertions.
fn lane_event_device(ev: &Event) -> Option<usize> {
    match *ev {
        Event::QpsChange(d) | Event::Retune(d) => Some(d),
        Event::SlowdownEnd { device, .. } | Event::ProcessRestart { device, .. } => Some(device),
        _ => None,
    }
}

impl EventLane {
    /// A lane owning the contiguous device range `[base, base+len)`,
    /// with its heap pre-sized for the bounded steady-state event
    /// population (QPS segment + retune + slowdown/restart tails per
    /// device) plus `extra` headroom.
    pub fn new(base: usize, len: usize, extra: usize) -> Self {
        let mut queue = EventQueue::new();
        queue.reserve(4 * len + extra);
        EventLane {
            queue,
            base,
            seqs: vec![0; len],
            msg_seqs: vec![0; len],
            clocks: vec![SimTime::ZERO; len],
        }
    }

    /// Schedules a lane-local event for device `d`. Past times clamp
    /// to the *device* clock: each device's stream stays monotone, and
    /// the clamp is identical no matter how devices are partitioned
    /// into lanes (a lane-clock clamp would fire events later on
    /// coarser partitions whenever another device's stream had already
    /// advanced the lane).
    pub fn schedule(&mut self, d: usize, at: SimTime, event: Event) {
        let li = d - self.base;
        let at = at.max(self.clocks[li]);
        debug_assert!(self.seqs[li] < 1 << 40, "per-device event seq overflow");
        let seq = ((li as u64) << 40) | self.seqs[li];
        self.seqs[li] += 1;
        self.queue.schedule_raw(at, seq, event);
    }

    /// The next envelope merge key for an effect device `d` emits at
    /// `at`. Per-device counters make keys unique and emission-ordered.
    pub fn next_msg_key(&mut self, at: SimTime, d: usize) -> MergeKey {
        let li = d - self.base;
        let key = MergeKey::new(at, d as u64, self.msg_seqs[li]);
        self.msg_seqs[li] += 1;
        key
    }

    /// Pops the lane's next event if it fires at or before `horizon`,
    /// advancing the owning device's clock. The pop is relaxed: the
    /// heap interleaves independent per-device streams, so queue-wide
    /// time can step backwards across devices (each device's own
    /// stream stays monotone under the schedule clamp).
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, Event)> {
        let (at, event) = self.queue.pop_until_relaxed(horizon)?;
        if let Some(d) = lane_event_device(&event) {
            let li = d - self.base;
            self.clocks[li] = self.clocks[li].max(at);
        }
        Some((at, event))
    }

    /// Firing time of the lane's next event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// The lane clock (firing time of the last popped lane event).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Events fired on this lane.
    pub fn fired(&self) -> u64 {
        self.queue.fired()
    }

    /// Pending events on this lane.
    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

/// The global event queue: shared-state events only (arrivals,
/// completions, faults, repairs, promotions, the utilization sample).
/// A thin wrapper over one [`EventQueue`] that also owns the epoch
/// window geometry.
pub(super) struct ShardedEvents {
    queue: EventQueue<Event>,
    /// Epoch window length, simulated seconds.
    epoch_secs: f64,
}

impl ShardedEvents {
    /// A global queue pre-sized for `reserve` pending events.
    pub fn new(epoch_secs: f64, reserve: usize) -> Self {
        let mut queue = EventQueue::new();
        queue.reserve(reserve);
        ShardedEvents {
            queue,
            epoch_secs: epoch_secs.max(1.0),
        }
    }

    /// Global simulated time (firing time of the last popped global
    /// event).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Global events fired.
    pub fn fired(&self) -> u64 {
        self.queue.fired()
    }

    /// Pending global events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the global queue is drained.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules a global event at absolute time `at` (past times
    /// clamp to the global clock).
    pub fn schedule_at(&mut self, at: SimTime, event: Event) {
        self.queue.schedule_at(at, event);
    }

    /// Schedules a global event `delay` after the global clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: Event) {
        self.queue.schedule_in(delay, event);
    }

    /// Firing time of the next global event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next global event if it fires at or before `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, Event)> {
        self.queue.pop_until(horizon)
    }

    /// The first epoch boundary strictly after `t` — the commit
    /// window's end. Windows are anchored on absolute multiples of the
    /// epoch length so the boundary sequence is a property of the
    /// config, not of the event population; anchoring on the *next
    /// event's* time fast-forwards over idle stretches (a window is
    /// never empty).
    pub fn epoch_end_after(&self, t: SimTime) -> SimTime {
        let e = self.epoch_secs;
        let end = ((t.as_secs() / e).floor() + 1.0) * e;
        if end > t.as_secs() {
            SimTime::from_secs(end)
        } else {
            // f64 roundoff at extreme magnitudes: fall back to a plain
            // one-epoch advance so the window always makes progress.
            t + SimDuration::from_secs(e)
        }
    }
}

/// Single-slot memo for [`violation_probability`], keyed on the exact
/// bit patterns of all five arguments. The function is pure, so a key
/// hit is always safe to reuse and a miss just recomputes. One slot
/// per device covers the common case (repeated accruals under an
/// unchanged configuration).
#[derive(Clone, Copy, Debug, Default)]
pub(super) struct VpCache {
    key: Option<(u64, u32, u64, u64, u64)>,
    p: f64,
}

impl VpCache {
    fn key_of(qps: f64, batch: u32, slo: f64, mean: f64, sigma: f64) -> (u64, u32, u64, u64, u64) {
        (
            qps.to_bits(),
            batch,
            slo.to_bits(),
            mean.to_bits(),
            sigma.to_bits(),
        )
    }

    /// The memoized probability, or a fresh computation (stored for
    /// the next lookup). Bit-identical to calling
    /// [`violation_probability`] directly.
    pub fn get(&mut self, qps: f64, batch: u32, slo: f64, mean: f64, sigma: f64) -> f64 {
        let key = Self::key_of(qps, batch, slo, mean, sigma);
        if self.key == Some(key) {
            return self.p;
        }
        let p = violation_probability(qps, batch, slo, mean, sigma);
        self.key = Some(key);
        self.p = p;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    #[test]
    fn lane_pops_order_by_time_then_device_then_schedule_order() {
        // A lane owning devices 8..12: equal-time events come back in
        // ascending-device order, and per device in schedule order.
        let mut lane = EventLane::new(8, 4, 16);
        lane.schedule(11, SimTime::from_secs(5.0), Event::QpsChange(11));
        lane.schedule(10, SimTime::from_secs(1.0), Event::QpsChange(10));
        lane.schedule(8, SimTime::from_secs(1.0), Event::QpsChange(8));
        lane.schedule(8, SimTime::from_secs(1.0), Event::Retune(8));
        let mut order = Vec::new();
        while let Some((t, ev)) = lane.pop_until(SimTime::from_secs(1e9)) {
            order.push((t.as_secs(), format!("{ev:?}")));
        }
        assert_eq!(
            order,
            vec![
                (1.0, "QpsChange(8)".to_string()),
                (1.0, "Retune(8)".to_string()),
                (1.0, "QpsChange(10)".to_string()),
                (5.0, "QpsChange(11)".to_string()),
            ]
        );
        assert_eq!(lane.fired(), 4);
        assert_eq!(lane.now(), SimTime::from_secs(5.0));
    }

    #[test]
    fn lane_past_scheduling_clamps_per_device_not_per_lane() {
        let mut lane = EventLane::new(0, 2, 16);
        lane.schedule(0, SimTime::from_secs(10.0), Event::QpsChange(0));
        lane.pop_until(SimTime::from_secs(1e9));
        // Device 1's stream is untouched: a past time for it must NOT
        // be dragged forward by device 0 having advanced the lane —
        // that clamp would depend on which devices share the lane.
        lane.schedule(1, SimTime::from_secs(1.0), Event::QpsChange(1));
        let (t, _) = lane.pop_until(SimTime::from_secs(1e9)).unwrap();
        assert_eq!(t, SimTime::from_secs(1.0));
        // Device 0's own stream *is* monotone: a past time for device
        // 0 clamps to its last fired event.
        lane.schedule(0, SimTime::from_secs(2.0), Event::QpsChange(0));
        let (t, _) = lane.pop_until(SimTime::from_secs(1e9)).unwrap();
        assert_eq!(t, SimTime::from_secs(10.0));
    }

    #[test]
    fn envelope_sort_is_time_then_device_then_emission_order() {
        // Two lanes emit at interleaved times; the barrier sort must
        // order by (time, device, seq) regardless of which outbox an
        // envelope came from.
        let mut a = EventLane::new(0, 2, 4);
        let mut b = EventLane::new(2, 2, 4);
        let mk = |lane: &mut EventLane, t: f64, d: usize| Envelope {
            key: lane.next_msg_key(SimTime::from_secs(t), d),
            msg: OutMsg::Bo { iters: d },
        };
        let mut all = [
            mk(&mut b, 2.0, 3),
            mk(&mut a, 2.0, 1),
            mk(&mut a, 1.0, 1),
            mk(&mut a, 1.0, 1), // same (time, device): emission order
            mk(&mut b, 1.0, 2),
        ];
        all.sort_unstable_by_key(|e| e.key);
        let keys: Vec<(f64, u64, u64)> = all
            .iter()
            .map(|e| (e.key.time.as_secs(), e.key.actor, e.key.seq))
            .collect();
        assert_eq!(
            keys,
            vec![
                (1.0, 1, 1),
                (1.0, 1, 2),
                (1.0, 2, 0),
                (2.0, 1, 0),
                (2.0, 3, 0),
            ]
        );
        // Suppress unused-variant noise: Progress/Completion carry data.
        let _ = OutMsg::Progress {
            job: JobId(0),
            iters: 0.0,
            run_dt: 0.0,
        };
    }

    #[test]
    fn epoch_windows_fast_forward_past_idle_gaps() {
        let q = ShardedEvents::new(60.0, 16);
        assert!(q.is_empty());
        // Inside an epoch: boundary is the next multiple of 60.
        assert_eq!(
            q.epoch_end_after(SimTime::from_secs(10.0)),
            SimTime::from_secs(60.0)
        );
        // Exactly on a boundary: the window is the *next* epoch.
        assert_eq!(
            q.epoch_end_after(SimTime::from_secs(60.0)),
            SimTime::from_secs(120.0)
        );
        // Far in the future: anchored on absolute multiples, so the
        // window still lands on a config-derived boundary.
        assert_eq!(
            q.epoch_end_after(SimTime::from_secs(86_401.0)),
            SimTime::from_secs(86_460.0)
        );
    }

    #[test]
    fn vp_cache_is_bit_identical_to_the_direct_call() {
        let mut c = VpCache::default();
        let args = [(30.0, 16u32, 0.2, 0.05, 0.3), (45.0, 8, 0.1, 0.09, 0.2)];
        for &(qps, batch, slo, mean, sigma) in &args {
            let direct = violation_probability(qps, batch, slo, mean, sigma);
            assert_eq!(c.get(qps, batch, slo, mean, sigma), direct);
            // Second lookup is the memo hit, same bits.
            assert_eq!(c.get(qps, batch, slo, mean, sigma), direct);
        }
    }
}
