//! Rack-sharded event scheduling and the epoch-barrier stepping plan.
//!
//! The staged kernel partitions its event population over rack-aligned
//! shards ([`simcore::ShardMap`]): every engine event has a *home
//! shard* — the shard owning the device it concerns — and lives in that
//! shard's own [`EventQueue`]. One **global** `(clock, sequence)` pair
//! spans all queues, so popping the `(time, seq)`-minimum across the
//! per-shard queues reproduces a single queue's pop order *exactly*:
//! time order first, then global schedule order at equal times. That
//! invariant is what makes every run bit-identical at 1, 2, 4, or 8
//! shards — the sharding changes where events wait, never when or in
//! what order they fire.
//!
//! # The epoch-barrier contract
//!
//! Sharded stepping alternates two phases per epoch window (a fixed
//! stretch of simulated time, `shard_epoch_secs`, fast-forwarded past
//! idle gaps):
//!
//! 1. **Speculation** (parallel): each shard's worker walks its own
//!    contiguous device slice and warms *pure, per-device* memos — the
//!    [`GpuDevice`] latency-profile cell and the [`VpCache`]
//!    violation-probability slot — from the devices' current
//!    configurations. Both memos are keyed on the exact bit patterns
//!    of their inputs, so a stale entry can never be *wrongly* reused:
//!    the commit phase re-checks the key and recomputes on any
//!    mismatch. Speculation therefore cannot perturb results, only
//!    move work off the serial critical path.
//! 2. **Commit** (serial): events inside the window are popped in the
//!    canonical global order and dispatched exactly as the
//!    single-queue engine would. Order-sensitive state — the shared
//!    tuner and placement RNG stream, global float accumulators —
//!    is only ever touched here.
//!
//! Cross-shard traffic (failover reroutes and their undo at repair)
//! travels as typed [`ShardMsg`] values through per-shard inboxes,
//! drained *immediately at the emitting event's instant* in canonical
//! shard-ascending order. Because shards own contiguous ascending
//! device ranges, shard-ascending FIFO drain order equals ascending
//! survivor-device order — the exact order the unsharded engine
//! applied reroutes in, which is why the goldens stay byte-identical.
//! Standby promotions and correlated blast expansions already travel
//! through the event queues themselves, routed to the affected
//! device's home shard.
//!
//! # Per-shard randomness
//!
//! Every order-insensitive stream the kernel draws is forked per
//! *device* from the run seed (`fork_indexed("qps", d)`,
//! `fork_indexed("dwell0", d)`), and devices never migrate between
//! shards — so each shard already owns an independent, run-seed-derived
//! family of RNG streams, identical at every shard count. The only
//! draws on the shared global stream (GP-LCB retunes, placement) are
//! order-sensitive by nature and run in the serial commit phase.

use gpu_sim::GpuDevice;
use simcore::{scoped_for_each_mut, EventQueue, ShardMap, SimDuration, SimTime, Topology};

use super::control::violation_probability;
use super::state::{DeviceState, Event, SimState};

/// Auto-sharding floor: below this device count a single shard wins
/// (the merge scan and epoch machinery cost more than they save).
pub(super) const AUTO_SHARD_MIN_DEVICES: usize = 4096;

/// A typed cross-shard message, applied at the instant it is emitted.
#[derive(Clone, Copy, Debug)]
pub(super) enum ShardMsg {
    /// A failed replica's base traffic lands on a surviving
    /// same-service replica (possibly on another shard).
    Reroute {
        /// The failed device whose traffic is moving.
        origin: usize,
        /// The surviving device absorbing `share` extra QPS.
        survivor: usize,
        /// QPS share this survivor absorbs.
        share: f64,
    },
    /// A repair returns a previously rerouted share to its origin.
    RerouteUndo {
        /// The surviving device releasing `share` extra QPS.
        survivor: usize,
        /// QPS share released.
        share: f64,
    },
}

/// One shard's event lane: its own queue plus the inbox cross-shard
/// messages land in until the canonical drain applies them.
struct ShardLane {
    queue: EventQueue<Event>,
    inbox: Vec<ShardMsg>,
}

/// The sharded event scheduler: per-shard queues under one global
/// clock and sequence counter. Drop-in replacement for the single
/// [`EventQueue`] the kernel used to own — same `schedule_at` /
/// `schedule_in` / `pop` / `pop_until` / `now` / `fired` surface, same
/// observable behavior at every shard count.
pub(super) struct ShardedEvents {
    topo: Topology,
    map: ShardMap,
    lanes: Vec<ShardLane>,
    /// Global simulated clock: the firing time of the last popped
    /// event, regardless of which lane it came from.
    clock: SimTime,
    /// Global tie-break sequence spanning every lane.
    next_seq: u64,
    /// Global pop count.
    fired: u64,
    /// Epoch window length, simulated seconds.
    epoch_secs: f64,
    /// Worker count for the speculation phase, resolved once at
    /// construction (`max_workers()` reads the environment and
    /// allocates — the hot stepping paths must not call it per step).
    workers: usize,
}

impl ShardedEvents {
    /// Builds the lanes for `requested` shards (clamped to the rack
    /// count by [`ShardMap`]) and pre-sizes each lane's heap for its
    /// own device range plus `extra` shared events, so bounded
    /// steady-state populations never reallocate.
    pub fn new(topo: &Topology, requested: usize, epoch_secs: f64, extra: usize) -> Self {
        let map = ShardMap::new(topo, requested.max(1));
        let lanes = (0..map.shards())
            .map(|s| {
                let mut queue = EventQueue::new();
                queue.reserve(2 * map.device_range(s).len() + extra);
                ShardLane {
                    queue,
                    inbox: Vec::new(),
                }
            })
            .collect();
        let workers = simcore::max_workers().min(map.shards());
        ShardedEvents {
            topo: topo.clone(),
            map,
            lanes,
            clock: SimTime::ZERO,
            next_seq: 0,
            fired: 0,
            epoch_secs: epoch_secs.max(1.0),
            workers,
        }
    }

    /// Resolved shard count.
    pub fn shard_count(&self) -> usize {
        self.lanes.len()
    }

    /// Speculation workers (`min(max_workers(), shards)`, resolved at
    /// construction).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The rack→shard partition behind the lanes.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Global simulated time (firing time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total events fired across every lane.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Total pending events across every lane.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len()).sum()
    }

    /// Whether every lane is drained.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.queue.is_empty())
    }

    /// The home shard of a self-describing event. Events that do not
    /// name a device (arrivals, the utilization sample) live on shard
    /// 0; events whose device is known only to the caller
    /// (completions, schedule faults) go through
    /// [`ShardedEvents::schedule_at_on`].
    fn home_shard(&self, ev: &Event) -> usize {
        match *ev {
            Event::QpsChange(d) | Event::Retune(d) | Event::DeviceRepair(d) => self.shard_of(d),
            Event::SlowdownEnd { device, .. } | Event::ProcessRestart { device, .. } => {
                self.shard_of(device)
            }
            Event::StandbyPromote { host, .. } => self.shard_of(host),
            Event::JobArrival(_)
            | Event::UtilSample
            | Event::JobCompletion { .. }
            | Event::Fault(_) => 0,
        }
    }

    /// The shard owning device `d`.
    pub fn shard_of(&self, d: usize) -> usize {
        self.map.shard_of_device(&self.topo, d)
    }

    /// Schedules `event` at absolute time `at` on its home shard.
    /// Scheduling in the past is clamped to the global clock, exactly
    /// like the single queue clamped to its own.
    pub fn schedule_at(&mut self, at: SimTime, event: Event) {
        let lane = self.home_shard(&event);
        self.schedule_on_lane(lane, at, event);
    }

    /// Schedules `event` on the shard owning `device` — the routing
    /// for events whose home device is not in their payload
    /// (completions and schedule-fault dispatches).
    pub fn schedule_at_on(&mut self, device: usize, at: SimTime, event: Event) {
        let lane = self.shard_of(device);
        self.schedule_on_lane(lane, at, event);
    }

    /// Schedules `event` to fire `delay` after the global clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: Event) {
        self.schedule_at(self.clock + delay, event);
    }

    fn schedule_on_lane(&mut self, lane: usize, at: SimTime, event: Event) {
        let at = at.max(self.clock);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lanes[lane].queue.schedule_raw(at, seq, event);
    }

    /// The `(time, seq)` key and lane of the globally next event.
    fn peek_best(&self) -> Option<((SimTime, u64), usize)> {
        let mut best: Option<((SimTime, u64), usize)> = None;
        for (s, lane) in self.lanes.iter().enumerate() {
            if let Some(k) = lane.queue.peek_key() {
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, s));
                }
            }
        }
        best
    }

    /// Firing time of the globally next event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_best().map(|((t, _), _)| t)
    }

    /// Pops the globally next event, advancing the global clock.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let (_, s) = self.peek_best()?;
        let (at, event) = self.lanes[s].queue.pop().expect("peeked lane is non-empty");
        self.clock = at;
        self.fired += 1;
        Some((at, event))
    }

    /// Pops the globally next event only if it fires at or before
    /// `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, Event)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// The first epoch boundary strictly after `t` — the commit
    /// window's end. Windows are anchored on absolute multiples of the
    /// epoch length so the boundary sequence is a property of the
    /// config, not of the event population; anchoring on the *next
    /// event's* time fast-forwards over idle stretches (a window is
    /// never empty).
    pub fn epoch_end_after(&self, t: SimTime) -> SimTime {
        let e = self.epoch_secs;
        let end = ((t.as_secs() / e).floor() + 1.0) * e;
        if end > t.as_secs() {
            SimTime::from_secs(end)
        } else {
            // f64 roundoff at extreme magnitudes: fall back to a plain
            // one-epoch advance so the window always makes progress.
            t + SimDuration::from_secs(e)
        }
    }

    /// Drops `msg` into the inbox of the shard owning `device`.
    pub fn push_msg_for(&mut self, device: usize, msg: ShardMsg) {
        let s = self.shard_of(device);
        self.lanes[s].inbox.push(msg);
    }

    /// Moves shard `s`'s pending messages into `buf` (in FIFO order),
    /// leaving the inbox empty with its capacity retained.
    pub fn take_inbox(&mut self, s: usize, buf: &mut Vec<ShardMsg>) {
        buf.append(&mut self.lanes[s].inbox);
    }
}

/// Single-slot memo for [`violation_probability`], keyed on the exact
/// bit patterns of all five arguments. The function is pure, so a key
/// hit is always safe to reuse — speculatively warmed entries included
/// — and a miss just recomputes. One slot per device covers the common
/// case (repeated accruals under an unchanged configuration).
#[derive(Clone, Copy, Debug, Default)]
pub(super) struct VpCache {
    key: Option<(u64, u32, u64, u64, u64)>,
    p: f64,
}

impl VpCache {
    fn key_of(qps: f64, batch: u32, slo: f64, mean: f64, sigma: f64) -> (u64, u32, u64, u64, u64) {
        (
            qps.to_bits(),
            batch,
            slo.to_bits(),
            mean.to_bits(),
            sigma.to_bits(),
        )
    }

    /// The memoized probability, or a fresh computation (stored for
    /// the next lookup). Bit-identical to calling
    /// [`violation_probability`] directly.
    pub fn get(&mut self, qps: f64, batch: u32, slo: f64, mean: f64, sigma: f64) -> f64 {
        let key = Self::key_of(qps, batch, slo, mean, sigma);
        if self.key == Some(key) {
            return self.p;
        }
        let p = violation_probability(qps, batch, slo, mean, sigma);
        self.key = Some(key);
        self.p = p;
        p
    }
}

/// The parallel speculation phase: each shard's worker warms its own
/// devices' pure memos (latency-profile cells and [`VpCache`] slots)
/// from their current configurations, so the serial commit phase's
/// first accrual per device is a cache hit. Runs on
/// [`scoped_for_each_mut`] with disjoint `&mut` slices cut along the
/// shard map's contiguous device ranges — no locks, no sharing of the
/// `!Sync` device memos across threads.
///
/// The multi-worker barrier allocates O(shards) claim slots and spawns
/// worker threads per call; callers amortize that by invoking it once
/// per epoch window, never per event.
pub(super) fn speculate_epoch(st: &mut SimState, workers: usize) {
    let shards = st.events.shard_count();
    if shards <= 1 || workers <= 1 {
        return;
    }

    struct ShardWork<'a> {
        devices: &'a mut [GpuDevice],
        dstate: &'a mut [DeviceState],
    }

    let mut work: Vec<ShardWork> = Vec::with_capacity(shards);
    let mut dev_rest: &mut [GpuDevice] = &mut st.devices;
    let mut ds_rest: &mut [DeviceState] = &mut st.dstate;
    let mut cut = 0usize;
    for s in 0..shards {
        let range = st.events.map().device_range(s);
        debug_assert_eq!(range.start, cut, "shard device ranges are contiguous");
        let len = range.end - cut;
        cut = range.end;
        let (devices, rest_d) = dev_rest.split_at_mut(len);
        let (dstate, rest_s) = ds_rest.split_at_mut(len);
        dev_rest = rest_d;
        ds_rest = rest_s;
        work.push(ShardWork { devices, dstate });
    }

    let gt = &st.shared.gt;
    scoped_for_each_mut(&mut work, workers, |_, w| {
        for (dev, ds) in w.devices.iter_mut().zip(w.dstate.iter_mut()) {
            let dev = &*dev;
            if !dev.is_up() {
                continue;
            }
            let Some(inf) = dev.inference() else { continue };
            let pf = dev.perf_factor();
            let frac = (inf.gpu_fraction * pf).max(0.01);
            let (colo_buf, colo_n) = dev.colo_for_inference_buf();
            let colo = &colo_buf[..colo_n];
            let spec = gt.zoo().service(inf.service);
            if spec.is_generative() {
                // Warm the latency memo at the steady running batch —
                // the key the decode accrual path will consult. The
                // vp_cache is not used on that path.
                let bsz = gt.steady_decode_batch(inf.service, inf.batch, frac, inf.qps, colo);
                let _ = dev.latency_profile(gt, inf.service, bsz, frac, colo);
            } else {
                let slo = spec.slo_secs();
                let (mean, sigma, _p99) =
                    dev.latency_profile(gt, inf.service, inf.batch, frac, colo);
                let _ = ds.vp_cache.get(inf.qps, inf.batch, slo, mean, sigma);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::TopologyShape;

    fn sharded(racks: usize, npr: usize, devices: usize, shards: usize) -> ShardedEvents {
        let topo = Topology::new(TopologyShape::new(racks, npr), devices);
        ShardedEvents::new(&topo, shards, 60.0, 16)
    }

    #[test]
    fn merged_pop_order_matches_a_single_queue() {
        // Mixed routing across 4 shards: pops come back in global
        // (time, seq) order no matter which lane each event sits in.
        let mut q = sharded(4, 2, 16, 4);
        q.schedule_at(SimTime::from_secs(5.0), Event::QpsChange(15)); // shard 3
        q.schedule_at(SimTime::from_secs(1.0), Event::QpsChange(0)); // shard 0
        q.schedule_at(SimTime::from_secs(1.0), Event::QpsChange(12)); // shard 3, same t
        q.schedule_in(SimDuration::from_secs(2.0), Event::UtilSample); // shard 0
        q.schedule_at_on(5, SimTime::from_secs(1.0), Event::Fault(0)); // shard 1, same t
        let mut order = Vec::new();
        while let Some((t, ev)) = q.pop() {
            order.push((t.as_secs(), format!("{ev:?}")));
        }
        assert_eq!(
            order,
            vec![
                (1.0, "QpsChange(0)".to_string()),
                (1.0, "QpsChange(12)".to_string()),
                (1.0, "Fault(0)".to_string()),
                (2.0, "UtilSample".to_string()),
                (5.0, "QpsChange(15)".to_string()),
            ]
        );
        assert_eq!(q.fired(), 5);
        assert_eq!(q.now(), SimTime::from_secs(5.0));
    }

    #[test]
    fn past_scheduling_clamps_to_the_global_clock() {
        // An event popped on shard 0 advances the *global* clock; a
        // later schedule in the past on another shard clamps to it.
        let mut q = sharded(4, 2, 16, 4);
        q.schedule_at(SimTime::from_secs(10.0), Event::QpsChange(0));
        q.pop();
        q.schedule_at(SimTime::from_secs(1.0), Event::QpsChange(15));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10.0));
    }

    #[test]
    fn epoch_windows_fast_forward_past_idle_gaps() {
        let q = sharded(4, 2, 16, 4);
        // Inside an epoch: boundary is the next multiple of 60.
        assert_eq!(
            q.epoch_end_after(SimTime::from_secs(10.0)),
            SimTime::from_secs(60.0)
        );
        // Exactly on a boundary: the window is the *next* epoch.
        assert_eq!(
            q.epoch_end_after(SimTime::from_secs(60.0)),
            SimTime::from_secs(120.0)
        );
        // Far in the future: anchored on absolute multiples, so the
        // window still lands on a config-derived boundary.
        assert_eq!(
            q.epoch_end_after(SimTime::from_secs(86_401.0)),
            SimTime::from_secs(86_460.0)
        );
    }

    #[test]
    fn inboxes_drain_in_shard_ascending_fifo_order() {
        let mut q = sharded(4, 2, 16, 4);
        // Push out of device order; shard-ascending FIFO drain must
        // return them in ascending-device order (contiguous ranges).
        for d in [14usize, 2, 9, 5] {
            q.push_msg_for(
                d,
                ShardMsg::RerouteUndo {
                    survivor: d,
                    share: 1.0,
                },
            );
        }
        let mut seen = Vec::new();
        let mut buf = Vec::new();
        for s in 0..q.shard_count() {
            q.take_inbox(s, &mut buf);
            for m in buf.drain(..) {
                if let ShardMsg::RerouteUndo { survivor, .. } = m {
                    seen.push(survivor);
                }
            }
        }
        assert_eq!(seen, vec![2, 5, 9, 14]);
    }

    #[test]
    fn vp_cache_is_bit_identical_to_the_direct_call() {
        let mut c = VpCache::default();
        let args = [(30.0, 16u32, 0.2, 0.05, 0.3), (45.0, 8, 0.1, 0.09, 0.2)];
        for &(qps, batch, slo, mean, sigma) in &args {
            let direct = violation_probability(qps, batch, slo, mean, sigma);
            assert_eq!(c.get(qps, batch, slo, mean, sigma), direct);
            // Second lookup is the memo hit, same bits.
            assert_eq!(c.get(qps, batch, slo, mean, sigma), direct);
        }
    }
}
