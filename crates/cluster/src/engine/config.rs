//! Run configuration: scale presets and the config builder.
//!
//! The three historical constructors (`physical`, `simulated`, `tiny`)
//! are thin wrappers over one [`ClusterConfigBuilder`] seeded by a
//! [`ScalePreset`], so the shared defaults exist in exactly one place
//! and the presets cannot drift apart.

use mudi::policy::QueuePolicy;
use resilience::FaultProfile;
use simcore::TopologyShape;
use workloads::BurstSchedule;

use crate::systems::SystemKind;

/// Cluster scale presets matching §7.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterScale {
    /// The private physical cluster: 12 A100s, 300 training tasks.
    Physical,
    /// The simulated cluster: 1000 GPUs, 5000 tasks, arrivals ×80.
    Simulated,
}

/// The scale preset a config builder starts from. Each preset fixes
/// the fields that differ between the paper's two clusters (and the
/// reduced test scale); everything else shares one set of defaults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalePreset {
    /// 12 GPUs, 300 tasks (§7.1 physical cluster).
    Physical,
    /// 1000 GPUs, 5000 tasks, arrivals ×80 (§7.1 simulated cluster).
    Simulated,
    /// 6 GPUs, 24 tasks — reduced scale for tests and smoke benches.
    Tiny,
}

/// Full run configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// System under test.
    pub system: SystemKind,
    /// Number of GPU devices.
    pub devices: usize,
    /// Number of training jobs to submit.
    pub jobs: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Global QPS multiplier (Fig. 15 uses 1×–4×).
    pub load_multiplier: f64,
    /// Optional burst schedule applied on top of the fluctuating QPS.
    pub burst: Option<BurstSchedule>,
    /// Queue policy for pending training tasks.
    pub policy: QueuePolicy,
    /// Mean dwell time of a QPS segment, seconds.
    pub qps_dwell_secs: f64,
    /// Base training-task arrival rate, tasks/second.
    pub arrival_rate: f64,
    /// Arrival scaling factor (×80 in the simulated cluster).
    pub arrival_scale: f64,
    /// Interval between cluster-utilization samples, seconds.
    pub util_sample_secs: f64,
    /// Safety cap on simulated time, seconds.
    pub max_sim_secs: f64,
    /// Optional fault injection + recovery profile. `None` reproduces
    /// the paper's fault-free runs exactly.
    pub faults: Option<FaultProfile>,
    /// The rack/node hierarchy devices are laid out over. Defaults to
    /// [`TopologyShape::from_env`] (`MUDI_TOPOLOGY=RxN`, else 4×2).
    /// Only consulted when faults are injected: correlated outages
    /// expand over it, and reliability-aware systems stripe same-
    /// service replicas across racks. Fault-free runs keep the paper's
    /// flat layout regardless, so topology never perturbs the
    /// fault-free reproduction.
    pub topology: TopologyShape,
    /// Requested engine shard count (rack-aligned event-queue
    /// partitions). `0` means auto: one shard for small clusters, up to
    /// `min(racks, workers)` once the cluster is large enough that
    /// sharding pays for itself. Any request is clamped to the rack
    /// count; the `MUDI_SHARDS` environment variable overrides this
    /// field. Results are bit-identical at every shard count.
    pub shards: usize,
    /// Length of one sharded stepping epoch, simulated seconds: the
    /// commit barrier fires at multiples of this. Only consulted when
    /// more than one shard is active; shorter epochs bound speculation
    /// staleness, longer epochs amortize the per-epoch barrier cost.
    pub shard_epoch_secs: f64,
    /// Parallel lane workers for the sharded stepping kernel. `0`
    /// means auto: resolve from the environment (`MUDI_THREADS`, else
    /// the core count) at engine construction. The worker count never
    /// affects simulated numbers — lanes commit through a
    /// merge-key-sorted barrier — only wall-clock time, so tests can
    /// pin it per-config without touching process-global state.
    pub workers: usize,
    /// Serve from the LLM-extended catalogue ([`workloads::Zoo::with_llms`]):
    /// the six classifier services plus generative LLM entries with
    /// per-token SLOs, continuous batching, and KV-cache pressure.
    /// Defaults to `false` — classifier-only configs never construct a
    /// generative service, never enter the decode accrual path, and
    /// stay byte-identical to the pre-LLM engine.
    pub llm_services: bool,
}

/// Builds a [`ClusterConfig`] from a scale preset plus overrides.
#[derive(Clone, Debug)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Starts from the given preset's scale parameters and the shared
    /// defaults (1× load, no burst, FCFS queue, no faults, topology
    /// from the environment).
    pub fn new(preset: ScalePreset, system: SystemKind, seed: u64) -> Self {
        let (devices, jobs, qps_dwell_secs, arrival_rate, arrival_scale, util_sample_secs, days) =
            match preset {
                ScalePreset::Physical => (12, 300, 45.0, 0.02, 1.0, 300.0, 40.0),
                ScalePreset::Simulated => (1000, 5000, 120.0, 0.02, 80.0, 900.0, 40.0),
                ScalePreset::Tiny => (6, 24, 45.0, 0.05, 1.0, 600.0, 20.0),
            };
        ClusterConfigBuilder {
            config: ClusterConfig {
                system,
                devices,
                jobs,
                seed,
                load_multiplier: 1.0,
                burst: None,
                policy: QueuePolicy::Fcfs,
                qps_dwell_secs,
                arrival_rate,
                arrival_scale,
                util_sample_secs,
                max_sim_secs: days * 24.0 * 3600.0,
                faults: None,
                topology: TopologyShape::from_env(),
                shards: 0,
                shard_epoch_secs: 60.0,
                workers: 0,
                llm_services: false,
            },
        }
    }

    /// Overrides the device count.
    pub fn devices(mut self, devices: usize) -> Self {
        self.config.devices = devices;
        self
    }

    /// Overrides the job count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = jobs;
        self
    }

    /// Overrides the global QPS multiplier.
    pub fn load_multiplier(mut self, mult: f64) -> Self {
        self.config.load_multiplier = mult;
        self
    }

    /// Applies a burst schedule on top of the fluctuating QPS.
    pub fn burst(mut self, burst: BurstSchedule) -> Self {
        self.config.burst = Some(burst);
        self
    }

    /// Overrides the pending-queue policy.
    pub fn policy(mut self, policy: QueuePolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Overrides the base training-task arrival rate (tasks/second).
    pub fn arrival_rate(mut self, rate: f64) -> Self {
        self.config.arrival_rate = rate;
        self
    }

    /// Overrides the arrival scaling factor.
    pub fn arrival_scale(mut self, scale: f64) -> Self {
        self.config.arrival_scale = scale;
        self
    }

    /// Enables fault injection with the given profile.
    pub fn faults(mut self, profile: FaultProfile) -> Self {
        self.config.faults = Some(profile);
        self
    }

    /// Overrides the rack/node topology shape.
    pub fn topology(mut self, shape: TopologyShape) -> Self {
        self.config.topology = shape;
        self
    }

    /// Overrides the simulated-time safety cap.
    pub fn max_sim_secs(mut self, secs: f64) -> Self {
        self.config.max_sim_secs = secs;
        self
    }

    /// Requests an explicit engine shard count (`0` = auto). The
    /// engine clamps to the rack count; `MUDI_SHARDS` overrides.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Overrides the sharded stepping epoch length (simulated seconds).
    pub fn shard_epoch_secs(mut self, secs: f64) -> Self {
        self.config.shard_epoch_secs = secs.max(1.0);
        self
    }

    /// Requests an explicit lane worker count (`0` = auto from
    /// `MUDI_THREADS` / core count). Affects wall-clock only; simulated
    /// numbers are worker-count-invariant.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Serves from the LLM-extended catalogue (classifier + generative
    /// mixed fleet).
    pub fn llm_services(mut self, on: bool) -> Self {
        self.config.llm_services = on;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> ClusterConfig {
        self.config
    }
}

impl ClusterConfig {
    /// A builder starting from `preset`'s scale parameters.
    pub fn builder(preset: ScalePreset, system: SystemKind, seed: u64) -> ClusterConfigBuilder {
        ClusterConfigBuilder::new(preset, system, seed)
    }

    /// The physical-cluster preset (12 GPUs, 300 tasks).
    pub fn physical(system: SystemKind, seed: u64) -> Self {
        Self::builder(ScalePreset::Physical, system, seed).build()
    }

    /// The simulated-cluster preset (1000 GPUs, 5000 tasks, ×80).
    pub fn simulated(system: SystemKind, seed: u64) -> Self {
        Self::builder(ScalePreset::Simulated, system, seed).build()
    }

    /// A reduced-scale preset for tests and smoke benches.
    pub fn tiny(system: SystemKind, seed: u64) -> Self {
        Self::builder(ScalePreset::Tiny, system, seed).build()
    }

    /// Enables fault injection with the given profile.
    pub fn with_faults(mut self, profile: FaultProfile) -> Self {
        self.faults = Some(profile);
        self
    }

    /// Which paper-scale regime this configuration falls into.
    pub fn scale(&self) -> ClusterScale {
        if self.devices >= 100 {
            ClusterScale::Simulated
        } else {
            ClusterScale::Physical
        }
    }
}
