//! The multiplexing systems under test.
//!
//! Each system answers two questions for the engine:
//!
//! 1. **Placement** — which device should host an arriving training
//!    task ([`Multiplexer::place`])?
//! 2. **Per-device configuration** — what batching size and GPU
//!    fraction should a device's inference replica use, and may the
//!    co-located training run ([`Multiplexer::configure`])?
//!
//! The baselines are reconstructed from their papers as described in
//! DESIGN.md: GSLICE reacts to latency feedback without interference
//! prediction; gpulets sizes partitions from *solo* profiles with a
//! fixed buffer; MuxFlow matches with pre-profiled pair scores and
//! falls back to averages for unobserved tasks; Random places blindly;
//! Optimal exhaustively searches the ground truth (an oracle upper
//! bound). Only the Mudi family manages memory by swapping — baselines
//! pause training while the device is overcommitted.

use std::collections::HashMap;

use modeling::solver::{min_gpu_fraction, min_gpu_fraction_decode};
use mudi::{
    DeviceCandidate, DeviceSelector, InterferencePredictor, LatencyProfiler, MudiConfig, Tuner,
};
use simcore::SimRng;
use workloads::{ColoWorkload, GroundTruth, ServiceId, TaskId};

/// Which system drives the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Full Mudi (§3-§5).
    Mudi,
    /// Mudi-more: up to three training tasks per GPU (§5.5).
    MudiMore,
    /// Ablation: cluster-wide co-location only, Tuner disabled (§7.3).
    MudiClusterOnly,
    /// Ablation: device-level control only, random placement (§7.3).
    MudiDeviceOnly,
    /// Ablation: full Mudi with the topology-blind flat-pool selector —
    /// reliability prior and fault-domain anti-affinity disabled, and
    /// replicas laid out without rack striping. The control arm of the
    /// fig20 correlated-failure sweep.
    MudiFlat,
    /// GSLICE baseline.
    Gslice,
    /// gpulets baseline.
    Gpulets,
    /// MuxFlow baseline.
    MuxFlow,
    /// Random placement, even split.
    Random,
    /// Exhaustive ground-truth oracle.
    Optimal,
}

impl SystemKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Mudi => "Mudi",
            SystemKind::MudiMore => "Mudi-more",
            SystemKind::MudiClusterOnly => "Mudi-cluster-only",
            SystemKind::MudiDeviceOnly => "Mudi-device-only",
            SystemKind::MudiFlat => "Mudi-flat",
            SystemKind::Gslice => "GSLICE",
            SystemKind::Gpulets => "gpulets",
            SystemKind::MuxFlow => "MuxFlow",
            SystemKind::Random => "Random",
            SystemKind::Optimal => "Optimal",
        }
    }

    /// Whether this system runs Mudi's unified-memory swapping; others
    /// must pause training when the device overflows.
    pub fn manages_memory(self) -> bool {
        matches!(
            self,
            SystemKind::Mudi
                | SystemKind::MudiMore
                | SystemKind::MudiClusterOnly
                | SystemKind::MudiDeviceOnly
                | SystemKind::MudiFlat
        )
    }

    /// Training tasks allowed per GPU.
    pub fn max_trainings(self) -> usize {
        match self {
            SystemKind::MudiMore => 3,
            _ => 1,
        }
    }

    /// Whether this system places with topology awareness: the
    /// reliability prior and fault-domain anti-affinity in the
    /// selector, plus rack-striped replica layout. `MudiFlat` and
    /// every baseline are topology-blind.
    pub fn reliability_aware(self) -> bool {
        matches!(
            self,
            SystemKind::Mudi | SystemKind::MudiMore | SystemKind::MudiClusterOnly
        )
    }
}

/// A device's state as presented to a system for configuration.
#[derive(Clone, Debug)]
pub struct DeviceView {
    /// Device index.
    pub device: usize,
    /// Resident inference service.
    pub service: ServiceId,
    /// Current replica QPS.
    pub qps: f64,
    /// The service's SLO in seconds.
    pub slo_secs: f64,
    /// Co-located training-task types.
    pub tasks: Vec<TaskId>,
    /// Current batching size.
    pub batch: u32,
    /// Current inference GPU fraction.
    pub fraction: f64,
    /// Last measured P99 latency, seconds (feedback systems).
    pub measured_p99: Option<f64>,
    /// Free device memory if the incoming task were placed, GB.
    pub mem_headroom_gb: f64,
}

/// A system's configuration decision for one device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfigDecision {
    /// Inference batching size.
    pub batch: u32,
    /// Inference GPU fraction.
    pub fraction: f64,
    /// Whether co-located training must pause (SLO infeasibility).
    pub pause_training: bool,
    /// BO iterations spent (Mudi; 0 for heuristic systems).
    pub bo_iterations: usize,
    /// Upper bound on the *total* GPU share handed to co-located
    /// training. Interference-aware systems use 1.0 (full leftover);
    /// GSLICE/gpulets cap it to protect inference, idling the rest.
    pub training_share_cap: f64,
}

impl ConfigDecision {
    /// Clamps the inference fraction so the primary plus a warm
    /// standby's reserved slice never overcommits the device. The
    /// reserve is invisible to every tuner (the standby pool sits below
    /// the systems' abstraction), so the engine applies this after
    /// `configure`. A zero reserve leaves the decision untouched.
    pub fn clamp_for_reserve(&mut self, reserve: f64) {
        if reserve > 0.0 {
            self.fraction = self.fraction.min(1.0 - reserve).max(0.01);
        }
    }
}

/// The common interface the engine drives.
///
/// `Send` so a whole engine/session can move to (or be shared behind a
/// mutex with) another thread — the serving control plane steps a
/// session from HTTP handler threads.
pub trait Multiplexer: Send {
    /// Chooses a device for an incoming training task, or `None` to
    /// leave it queued.
    fn place(
        &mut self,
        gt: &GroundTruth,
        incoming: TaskId,
        candidates: &[DeviceCandidate],
        rng: &mut SimRng,
    ) -> Option<usize>;

    /// (Re)configures a device on a trigger (placement, QPS change,
    /// SLO risk).
    fn configure(
        &mut self,
        gt: &GroundTruth,
        view: &DeviceView,
        rng: &mut SimRng,
    ) -> ConfigDecision;

    /// The system's kind.
    fn kind(&self) -> SystemKind;
}

/// Builds the system implementation, running any offline profiling it
/// needs (Mudi and MuxFlow profile the first five task types, §7.1).
pub fn build_system(kind: SystemKind, gt: &GroundTruth, rng: &mut SimRng) -> Box<dyn Multiplexer> {
    match kind {
        SystemKind::Mudi
        | SystemKind::MudiMore
        | SystemKind::MudiClusterOnly
        | SystemKind::MudiDeviceOnly
        | SystemKind::MudiFlat => Box::new(MudiSystem::new(kind, gt, rng)),
        SystemKind::Gslice => Box::new(Gslice::new(gt, rng)),
        SystemKind::Gpulets => Box::new(Gpulets::new(gt, rng)),
        SystemKind::MuxFlow => Box::new(MuxFlow::new(gt, rng)),
        SystemKind::Random => Box::new(RandomSystem),
        SystemKind::Optimal => Box::new(Optimal::default()),
    }
}

// ----------------------------------------------------------------------
// Mudi (full system + ablations).
// ----------------------------------------------------------------------

/// The Mudi family, parameterized by which halves are enabled.
pub struct MudiSystem {
    kind: SystemKind,
    config: MudiConfig,
    predictor: InterferencePredictor,
    selector: DeviceSelector,
    tuner: Tuner,
}

impl MudiSystem {
    /// Profiles offline and trains the predictor.
    pub fn new(kind: SystemKind, gt: &GroundTruth, rng: &mut SimRng) -> Self {
        let config = match kind {
            SystemKind::MudiMore => MudiConfig::more(),
            SystemKind::MudiFlat => MudiConfig::flat(),
            _ => MudiConfig::default(),
        };
        let profiler = LatencyProfiler::new(config.clone());
        let mut prof_rng = rng.fork("offline-profiling");
        let profiled = gt.zoo().profiled_task_ids();
        let mut db = profiler.build_database(gt, &profiled, &mut prof_rng);
        if kind == SystemKind::MudiMore {
            profiler.extend_multi_task(gt, &mut db, &profiled, &mut prof_rng);
        }
        let predictor = InterferencePredictor::new(db, &mut prof_rng)
            .expect("offline profiling produced a non-empty database");
        MudiSystem {
            kind,
            selector: DeviceSelector::new(config.clone()),
            tuner: Tuner::new(config.clone()),
            config,
            predictor,
        }
    }

    /// Access to the trained predictor (microscopic experiments).
    pub fn predictor(&self) -> &InterferencePredictor {
        &self.predictor
    }
}

impl Multiplexer for MudiSystem {
    fn place(
        &mut self,
        gt: &GroundTruth,
        incoming: TaskId,
        candidates: &[DeviceCandidate],
        rng: &mut SimRng,
    ) -> Option<usize> {
        if self.kind == SystemKind::MudiDeviceOnly {
            return self
                .selector
                .select_random(candidates, rng)
                .map(|d| d.device);
        }
        self.selector
            .select(gt, &self.predictor, incoming, candidates)
            .map(|d| d.device)
    }

    fn configure(
        &mut self,
        gt: &GroundTruth,
        view: &DeviceView,
        rng: &mut SimRng,
    ) -> ConfigDecision {
        let arch = LatencyProfiler::merged_arch(gt, &view.tasks);
        if self.kind == SystemKind::MudiClusterOnly {
            // Tuner disabled: static configuration from the predictor —
            // the initial fraction (max cutoff) and a mid-range batch.
            let fraction = self
                .tuner
                .initial_fraction(&self.predictor, view.service, &arch);
            let batch = best_static_batch(
                &self.config,
                &self.predictor,
                view.service,
                view.slo_secs,
                view.qps,
                tokens_per_request(gt, view.service),
                &arch,
            );
            return ConfigDecision {
                batch,
                fraction,
                pause_training: false,
                bo_iterations: 0,
                training_share_cap: 1.0,
            };
        }

        // Full tuner: GP-LCB adaptive batching + Eq. 4 scaling, with
        // observed training iteration times from the Training Agent
        // (sampled from the ground truth, as a real agent would
        // measure).
        let mut sample_rng = rng.fork("iteration-samples");
        let tasks = view.tasks.as_slice();
        let service = view.service;
        // The tuner probes both closures once per BO evaluation; the
        // co-location views are built in fixed stack buffers (a device
        // hosts at most MAX_TRAININGS_PER_GPU trainings plus one
        // inference replica) so a tuning pass never allocates.
        const COLO_CAP: usize = gpu_sim::device::MAX_TRAININGS_PER_GPU + 1;
        let colo_at = |frac: f64| -> ([ColoWorkload; COLO_CAP], usize) {
            let share = if tasks.is_empty() {
                0.0
            } else {
                ((1.0 - frac) / tasks.len() as f64).max(0.01)
            };
            let mut buf = [ColoWorkload::training(TaskId(0), 0.0); COLO_CAP];
            for (slot, &t) in buf.iter_mut().zip(tasks) {
                *slot = ColoWorkload::training(t, share);
            }
            (buf, tasks.len())
        };
        let outcome = self.tuner.tune(
            &self.predictor,
            service,
            view.slo_secs,
            view.qps,
            tokens_per_request(gt, service),
            &arch,
            |batch, frac| {
                if tasks.is_empty() {
                    // No co-located training: prefer the smallest
                    // inference footprint.
                    return frac;
                }
                let share = ((1.0 - frac) / tasks.len() as f64).max(0.01);
                tasks
                    .iter()
                    .map(|&t| {
                        let mut colo = [ColoWorkload::inference(service, batch, frac); COLO_CAP];
                        let mut n = 1;
                        for &o in tasks {
                            if o != t {
                                colo[n] = ColoWorkload::training(o, share);
                                n += 1;
                            }
                        }
                        gt.sample_training_iteration(t, share, &colo[..n], &mut sample_rng)
                    })
                    .sum::<f64>()
            },
            // Online tail-latency measurement (§5.3.1's live constraint
            // feedback): the Service Agent reports the observed P99
            // under the probed configuration.
            |batch, frac| {
                let (colo, n) = colo_at(frac);
                gt.p99_inference_latency(service, batch, frac, &colo[..n])
            },
            rng,
        );
        ConfigDecision {
            batch: outcome.batch,
            fraction: outcome.gpu_fraction,
            pause_training: !outcome.feasible,
            bo_iterations: outcome.bo_iterations,
            training_share_cap: 1.0,
        }
    }

    fn kind(&self) -> SystemKind {
        self.kind
    }
}

/// Mean decode tokens per request for a generative service, 0.0 for a
/// classifier. The discriminant every sizing path branches on: a
/// positive value switches the solver to the decode-loop budget where
/// `batch` means running-batch concurrency and `slo` the ITL target.
fn tokens_per_request(gt: &GroundTruth, service: ServiceId) -> f64 {
    gt.zoo()
        .service(service)
        .generative
        .map_or(0.0, |g| g.decode_tokens_mean)
}

/// Static batch choice used when the Tuner is ablated: the candidate
/// with the smallest predicted required fraction (feasible ones first).
fn best_static_batch(
    config: &MudiConfig,
    predictor: &InterferencePredictor,
    service: ServiceId,
    slo_secs: f64,
    qps: f64,
    tokens_per_request: f64,
    arch: &workloads::NetworkArchitecture,
) -> u32 {
    let mut best: Option<(u32, f64)> = None;
    for &b in &config.batch_candidates {
        let Some(curve) = predictor.curve_for_arch(service, arch, b) else {
            continue;
        };
        let frac = if tokens_per_request > 0.0 {
            min_gpu_fraction_decode(
                &curve,
                qps * tokens_per_request,
                b as f64,
                slo_secs,
                config.min_inference_fraction,
                config.max_inference_fraction,
            )
        } else {
            min_gpu_fraction(
                &curve,
                qps,
                b as f64,
                slo_secs,
                config.min_inference_fraction,
                config.max_inference_fraction,
            )
        };
        if let Some(frac) = frac {
            if best.is_none_or(|(_, bf)| frac < bf) {
                best = Some((b, frac));
            }
        }
    }
    best.map(|(b, _)| b).unwrap_or(16)
}

// ----------------------------------------------------------------------
// GSLICE.
// ----------------------------------------------------------------------

/// GSLICE: per-device GPU partitioning driven by latency/throughput
/// feedback. No interference prediction, no cluster-wide coordination —
/// placement is least-loaded. Partitions grow on SLO pressure and
/// shrink slowly when comfortable, so it over-provisions inference.
pub struct Gslice {
    /// Per-device fraction state (feedback controller memory).
    fractions: HashMap<usize, f64>,
    _rng: SimRng,
}

impl Gslice {
    /// Creates the baseline.
    pub fn new(_gt: &GroundTruth, rng: &mut SimRng) -> Self {
        Gslice {
            fractions: HashMap::new(),
            _rng: rng.fork("gslice"),
        }
    }
}

impl Multiplexer for Gslice {
    fn place(
        &mut self,
        _gt: &GroundTruth,
        _incoming: TaskId,
        candidates: &[DeviceCandidate],
        _rng: &mut SimRng,
    ) -> Option<usize> {
        // Least-loaded: fewest co-located tasks, then lowest index.
        candidates
            .iter()
            .filter(|c| c.existing_tasks.is_empty())
            .min_by_key(|c| c.device)
            .map(|c| c.device)
    }

    fn configure(
        &mut self,
        gt: &GroundTruth,
        view: &DeviceView,
        _rng: &mut SimRng,
    ) -> ConfigDecision {
        // Batch: largest candidate whose fill wait stays under half the
        // SLO (a throughput-oriented heuristic without a latency model).
        // For a generative service the fill-wait notion is meaningless
        // (continuous batching has no batch-fill barrier), so GSLICE
        // sizes the running-batch cap to cover twice the tokens that
        // arrive per ITL period — throughput headroom, still blind to
        // the iteration-latency cost of concurrency.
        let toks = tokens_per_request(gt, view.service);
        let batch = if toks > 0.0 {
            let tok_rate = view.qps * toks;
            [2u32, 4, 8, 16, 32, 64, 128, 256, 512]
                .into_iter()
                .find(|&b| b as f64 >= tok_rate * view.slo_secs * 2.0)
                .unwrap_or(512)
        } else {
            [512u32, 256, 128, 64, 32, 16, 8, 4, 2]
                .into_iter()
                .find(|&b| view.qps > 0.0 && (b as f64 / view.qps) <= view.slo_secs * 0.5)
                .unwrap_or(2)
        };
        // Fraction: feedback steps on the measured P99.
        let f = self.fractions.entry(view.device).or_insert(0.60);
        if let Some(p99) = view.measured_p99 {
            if p99 > view.slo_secs * 0.9 {
                *f = (*f + 0.10).min(0.90);
            } else if p99 < view.slo_secs * 0.5 {
                *f = (*f - 0.03).max(0.40); // Conservative floor: over-provisions.
            }
        }
        ConfigDecision {
            batch,
            fraction: *f,
            pause_training: false,
            bo_iterations: 0,
            training_share_cap: 0.6,
        }
    }

    fn kind(&self) -> SystemKind {
        SystemKind::Gslice
    }
}

// ----------------------------------------------------------------------
// gpulets.
// ----------------------------------------------------------------------

/// gpulets: sizes each inference "gpulet" from **solo** latency
/// profiles plus a fixed 10 % interference buffer, then best-fit packs
/// training into the leftover. Cross-workload interference beyond the
/// buffer is invisible to it.
pub struct Gpulets {
    predictor: InterferencePredictor,
    config: MudiConfig,
}

impl Gpulets {
    /// Profiles solo curves only (no co-location awareness).
    pub fn new(gt: &GroundTruth, rng: &mut SimRng) -> Self {
        let config = MudiConfig::default();
        let profiler = LatencyProfiler::new(config.clone());
        let mut prof_rng = rng.fork("gpulets-profiling");
        // Solo-only database: pass an empty task list.
        let db = profiler.build_database(gt, &[], &mut prof_rng);
        let predictor =
            InterferencePredictor::new(db, &mut prof_rng).expect("solo profiles available");
        Gpulets { predictor, config }
    }
}

impl Multiplexer for Gpulets {
    fn place(
        &mut self,
        _gt: &GroundTruth,
        _incoming: TaskId,
        candidates: &[DeviceCandidate],
        _rng: &mut SimRng,
    ) -> Option<usize> {
        // Best-fit by memory headroom: the fullest device that still
        // fits, a packing heuristic blind to interference type.
        candidates
            .iter()
            .filter(|c| c.existing_tasks.is_empty())
            .min_by(|a, b| {
                a.mem_headroom_gb
                    .partial_cmp(&b.mem_headroom_gb)
                    .expect("finite headroom")
            })
            .map(|c| c.device)
    }

    fn configure(
        &mut self,
        gt: &GroundTruth,
        view: &DeviceView,
        _rng: &mut SimRng,
    ) -> ConfigDecision {
        // Solo curve + fixed 10 % buffer, sized for *peak* load (1.5x
        // the current rate): gpulets pre-partitions its virtual GPUs
        // and cannot cheaply repartition per fluctuation, so it
        // over-provisions the inference gpulet.
        let solo_arch = workloads::NetworkArchitecture::empty();
        let sizing_qps = view.qps * 1.5;
        let toks = tokens_per_request(gt, view.service);
        let mut best: Option<(u32, f64)> = None;
        for &b in &self.config.batch_candidates {
            let Some(curve) = self.predictor.curve_for_arch(view.service, &solo_arch, b) else {
                continue;
            };
            let frac = if toks > 0.0 {
                min_gpu_fraction_decode(
                    &curve,
                    sizing_qps * toks,
                    b as f64,
                    view.slo_secs,
                    self.config.min_inference_fraction,
                    0.90,
                )
            } else {
                min_gpu_fraction(
                    &curve,
                    sizing_qps,
                    b as f64,
                    view.slo_secs,
                    self.config.min_inference_fraction,
                    0.90,
                )
            };
            if let Some(frac) = frac {
                if best.is_none_or(|(_, bf)| frac < bf) {
                    best = Some((b, frac));
                }
            }
        }
        let (batch, frac) = best.unwrap_or((16, 0.90));
        ConfigDecision {
            batch,
            fraction: (frac * 1.10).min(0.90),
            pause_training: false,
            bo_iterations: 0,
            training_share_cap: 0.6,
        }
    }

    fn kind(&self) -> SystemKind {
        SystemKind::Gpulets
    }
}

// ----------------------------------------------------------------------
// MuxFlow.
// ----------------------------------------------------------------------

/// MuxFlow: matching-based placement using pre-profiled pair scores.
/// Works well for the five profiled task types; unobserved tasks are
/// scored by the *average* profiled interference, which the paper shows
/// leads to the highest SLO violations. Configuration favors training
/// throughput: the inference fraction is sized with no safety margin.
pub struct MuxFlow {
    predictor: InterferencePredictor,
    config: MudiConfig,
    profiled: Vec<TaskId>,
    /// Static per-(device, co-location) decisions: MuxFlow sizes its SM
    /// split from pre-profiled pairs once per placement and does not
    /// adapt to QPS fluctuations — the inflexibility the paper calls
    /// out (§7.2). It re-sizes only when the load doubles or halves
    /// relative to the sizing point (stored alongside the decision).
    decisions: HashMap<(usize, Vec<TaskId>), (f64, ConfigDecision)>,
}

impl MuxFlow {
    /// Profiles the first five task types, like Mudi (§7.1).
    pub fn new(gt: &GroundTruth, rng: &mut SimRng) -> Self {
        let config = MudiConfig::default();
        let profiler = LatencyProfiler::new(config.clone());
        let mut prof_rng = rng.fork("muxflow-profiling");
        let profiled = gt.zoo().profiled_task_ids();
        let db = profiler.build_database(gt, &profiled, &mut prof_rng);
        let predictor = InterferencePredictor::new(db, &mut prof_rng).expect("profiles available");
        MuxFlow {
            predictor,
            config,
            profiled,
            decisions: HashMap::new(),
        }
    }

    /// The pair score: exact for profiled tasks, the profiled average
    /// for unobserved ones (MuxFlow has no architecture generalizer).
    fn pair_score(&self, gt: &GroundTruth, service: ServiceId, task: TaskId) -> f64 {
        let batches = &self.config.profile_batches;
        if self.profiled.contains(&task) {
            let arch = gt.zoo().task(task).arch;
            self.predictor
                .mean_slope_score(service, &arch, batches)
                .unwrap_or(1.0)
        } else {
            let mut sum = 0.0;
            let mut n = 0;
            for &p in &self.profiled {
                let arch = gt.zoo().task(p).arch;
                if let Some(s) = self.predictor.mean_slope_score(service, &arch, batches) {
                    sum += s;
                    n += 1;
                }
            }
            if n == 0 {
                1.0
            } else {
                sum / n as f64
            }
        }
    }
}

impl Multiplexer for MuxFlow {
    fn place(
        &mut self,
        gt: &GroundTruth,
        incoming: TaskId,
        candidates: &[DeviceCandidate],
        _rng: &mut SimRng,
    ) -> Option<usize> {
        candidates
            .iter()
            .filter(|c| c.existing_tasks.is_empty())
            .map(|c| (c.device, self.pair_score(gt, c.service, incoming)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
            .map(|(d, _)| d)
    }

    fn configure(
        &mut self,
        gt: &GroundTruth,
        view: &DeviceView,
        _rng: &mut SimRng,
    ) -> ConfigDecision {
        // MuxFlow's split is static per co-location: computed at
        // placement time for the QPS observed then, never revisited
        // while the task set is unchanged.
        let key = (view.device, {
            let mut t = view.tasks.clone();
            t.sort();
            t
        });
        if let Some((sized_qps, d)) = self.decisions.get(&key) {
            let drift = (view.qps - sized_qps).abs() / sized_qps.max(1.0);
            if drift < 1.0 {
                return *d;
            }
        }
        // Size the inference partition from the *profiled-average*
        // interference curve with no safety margin, maximizing the
        // training share.
        let arch = if view.tasks.iter().all(|t| self.profiled.contains(t)) {
            LatencyProfiler::merged_arch(gt, &view.tasks)
        } else {
            // Unobserved: pretend it is the average profiled task.
            let mid = self.profiled[self.profiled.len() / 2];
            gt.zoo().task(mid).arch
        };
        let mut best: Option<(u32, f64)> = None;
        let toks = tokens_per_request(gt, view.service);
        for &b in &self.config.batch_candidates {
            let Some(curve) = self.predictor.curve_for_arch(view.service, &arch, b) else {
                continue;
            };
            // No margin: divide out the solver's built-in 10 % pad.
            let frac = if toks > 0.0 {
                min_gpu_fraction_decode(
                    &curve,
                    view.qps * toks,
                    b as f64,
                    view.slo_secs,
                    self.config.min_inference_fraction,
                    0.90,
                )
            } else {
                min_gpu_fraction(
                    &curve,
                    view.qps,
                    b as f64,
                    view.slo_secs,
                    self.config.min_inference_fraction,
                    0.90,
                )
            };
            if let Some(frac) = frac {
                let unpadded = (frac / (1.0 + modeling::solver::SAFETY_MARGIN)).max(0.05);
                if best.is_none_or(|(_, bf)| unpadded < bf) {
                    best = Some((b, unpadded));
                }
            }
        }
        let (batch, frac) = best.unwrap_or((16, 0.90));
        // MuxFlow protects online services by quota-capping offline
        // training SMs ("safe GPU sharing"), slightly less conservative
        // than GSLICE/gpulets but below Mudi's full-leftover handover.
        let decision = ConfigDecision {
            batch,
            fraction: frac,
            pause_training: false,
            bo_iterations: 0,
            training_share_cap: 0.7,
        };
        self.decisions.insert(key, (view.qps, decision));
        decision
    }

    fn kind(&self) -> SystemKind {
        SystemKind::MuxFlow
    }
}

// ----------------------------------------------------------------------
// Random.
// ----------------------------------------------------------------------

/// Random placement, even 50/50 split, fixed batch (Fig. 17 baseline).
pub struct RandomSystem;

impl Multiplexer for RandomSystem {
    fn place(
        &mut self,
        _gt: &GroundTruth,
        _incoming: TaskId,
        candidates: &[DeviceCandidate],
        rng: &mut SimRng,
    ) -> Option<usize> {
        let eligible: Vec<usize> = candidates
            .iter()
            .filter(|c| c.existing_tasks.len() < 3)
            .map(|c| c.device)
            .collect();
        if eligible.is_empty() {
            None
        } else {
            Some(eligible[rng.uniform_usize(0, eligible.len())])
        }
    }

    fn configure(
        &mut self,
        _gt: &GroundTruth,
        view: &DeviceView,
        _rng: &mut SimRng,
    ) -> ConfigDecision {
        // Even split among inference + trainings, fixed batch 64.
        let n = 1 + view.tasks.len();
        ConfigDecision {
            batch: 64,
            fraction: (1.0 / n as f64).max(0.05),
            pause_training: false,
            bo_iterations: 0,
            training_share_cap: 1.0,
        }
    }

    fn kind(&self) -> SystemKind {
        SystemKind::Random
    }
}

// ----------------------------------------------------------------------
// Optimal (oracle).
// ----------------------------------------------------------------------

/// Exhaustive oracle: evaluates every (device, batch, fraction) against
/// the ground truth and picks the configuration minimizing true
/// iteration time subject to the true SLO constraint. Memoizes scores
/// per (service, tasks, QPS bucket) to stay tractable at 1000 GPUs.
/// Memo key: the service, the co-located task set, and a QPS bucket.
type OracleKey = (ServiceId, Vec<TaskId>, u64);
/// Memoized search result: `(batch, fraction, iteration_time)`, or
/// `None` when no configuration meets the SLO.
type OracleEntry = Option<(u32, f64, f64)>;

#[derive(Default)]
pub struct Optimal {
    cache: HashMap<OracleKey, OracleEntry>,
}

impl Optimal {
    /// Exhaustive per-device search against ground truth: best
    /// `(batch, fraction, iteration_time)` meeting the SLO, or `None`.
    pub fn best_config(
        &mut self,
        gt: &GroundTruth,
        service: ServiceId,
        slo_secs: f64,
        qps: f64,
        tasks: &[TaskId],
    ) -> Option<(u32, f64, f64)> {
        let key = (service, tasks.to_vec(), (qps / 10.0).round() as u64);
        if let Some(hit) = self.cache.get(&key) {
            return *hit;
        }
        let toks = tokens_per_request(gt, service);
        let mut best: Option<(u32, f64, f64)> = None;
        for &batch in &[2u32, 4, 8, 16, 32, 64, 128, 256, 512] {
            for step in 1..=18 {
                let frac = step as f64 * 0.05;
                let colo_share = if tasks.is_empty() {
                    0.0
                } else {
                    ((1.0 - frac) / tasks.len() as f64).max(0.01)
                };
                let colo: Vec<ColoWorkload> = tasks
                    .iter()
                    .map(|&t| ColoWorkload::training(t, colo_share))
                    .collect();
                // True SLO check: fill wait + true P99 within SLO, and
                // stable service. For a generative service the batch is
                // the running-batch cap: the true iteration tail must
                // meet the ITL target and the decode loop must retire
                // tokens faster than they arrive (with drift headroom).
                let p99 = gt.p99_inference_latency(service, batch, frac, &colo);
                if toks > 0.0 {
                    if p99 > slo_secs {
                        continue;
                    }
                    let tok_rate = qps * toks;
                    let mean = gt.inference_latency(service, batch, frac, &colo);
                    if tok_rate > 0.0 && tok_rate * mean / batch as f64 > 0.85 {
                        continue;
                    }
                } else if qps > 0.0 {
                    let fill = batch as f64 / qps;
                    // Same drift headroom the engine's monitor assumes.
                    if fill + p99 > slo_secs || p99 > 0.7 * fill {
                        continue;
                    }
                } else if p99 > slo_secs {
                    continue;
                }
                let iter_time: f64 = if tasks.is_empty() {
                    frac // Prefer the smallest footprint.
                } else {
                    tasks
                        .iter()
                        .map(|&t| {
                            let mut view = vec![ColoWorkload::inference(service, batch, frac)];
                            for &o in tasks {
                                if o != t {
                                    view.push(ColoWorkload::training(o, colo_share));
                                }
                            }
                            gt.training_iteration(t, colo_share, &view)
                        })
                        .sum()
                };
                if best.is_none_or(|(_, _, bi)| iter_time < bi) {
                    best = Some((batch, frac, iter_time));
                }
            }
        }
        self.cache.insert(key, best);
        best
    }
}

impl Multiplexer for Optimal {
    fn place(
        &mut self,
        gt: &GroundTruth,
        incoming: TaskId,
        candidates: &[DeviceCandidate],
        _rng: &mut SimRng,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for c in candidates {
            if !c.existing_tasks.is_empty() {
                continue;
            }
            // Representative load for the oracle's comparison, scaled
            // to the service class's sustainable request rate.
            let spec = gt.zoo().service(c.service);
            let rep_qps = 200.0 * spec.request_rate_scale();
            if let Some((_, _, iter)) =
                self.best_config(gt, c.service, spec.slo_secs(), rep_qps, &[incoming])
            {
                if best.is_none_or(|(_, bi)| iter < bi) {
                    best = Some((c.device, iter));
                }
            }
        }
        best.map(|(d, _)| d)
    }

    fn configure(
        &mut self,
        gt: &GroundTruth,
        view: &DeviceView,
        _rng: &mut SimRng,
    ) -> ConfigDecision {
        match self.best_config(gt, view.service, view.slo_secs, view.qps, &view.tasks) {
            Some((batch, fraction, _)) => ConfigDecision {
                batch,
                fraction,
                pause_training: false,
                bo_iterations: 0,
                training_share_cap: 1.0,
            },
            None => ConfigDecision {
                batch: 16,
                fraction: 0.90,
                pause_training: true,
                bo_iterations: 0,
                training_share_cap: 1.0,
            },
        }
    }

    fn kind(&self) -> SystemKind {
        SystemKind::Optimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Zoo;

    fn gt() -> GroundTruth {
        GroundTruth::new(Zoo::standard(), 19)
    }

    fn candidates(gt: &GroundTruth) -> Vec<DeviceCandidate> {
        gt.zoo()
            .services()
            .iter()
            .enumerate()
            .map(|(i, s)| DeviceCandidate {
                device: i,
                service: s.id,
                existing_tasks: vec![],
                mem_headroom_gb: 35.0,
                reliability: mudi::ReliabilityPrior::default(),
                domain_training_load: 0.0,
            })
            .collect()
    }

    #[test]
    fn kind_properties() {
        assert!(SystemKind::Mudi.manages_memory());
        assert!(SystemKind::MudiFlat.manages_memory());
        assert!(!SystemKind::Gslice.manages_memory());
        assert_eq!(SystemKind::MudiMore.max_trainings(), 3);
        assert_eq!(SystemKind::Gpulets.max_trainings(), 1);
        assert!(SystemKind::Mudi.reliability_aware());
        assert!(!SystemKind::MudiFlat.reliability_aware());
        assert!(!SystemKind::MuxFlow.reliability_aware());
    }

    #[test]
    fn gslice_feedback_raises_fraction_under_pressure() {
        let g = gt();
        let mut rng = SimRng::seed(1);
        let mut sys = Gslice::new(&g, &mut rng);
        let svc = &g.zoo().services()[0];
        let mut view = DeviceView {
            device: 0,
            service: svc.id,
            qps: 300.0,
            slo_secs: svc.slo_secs(),
            tasks: vec![],
            batch: 64,
            fraction: 0.6,
            measured_p99: Some(svc.slo_secs() * 0.95),
            mem_headroom_gb: 30.0,
        };
        let d1 = sys.configure(&g, &view, &mut rng);
        assert!(d1.fraction > 0.6, "should grow under SLO pressure");
        view.measured_p99 = Some(svc.slo_secs() * 0.2);
        let d2 = sys.configure(&g, &view, &mut rng);
        assert!(d2.fraction < d1.fraction, "should shrink when comfortable");
        assert!(d2.fraction >= 0.30, "conservative floor");
    }

    #[test]
    fn random_system_places_somewhere() {
        let g = gt();
        let mut rng = SimRng::seed(2);
        let mut sys = RandomSystem;
        let c = candidates(&g);
        let task = g.zoo().tasks()[0].id;
        let d = sys.place(&g, task, &c, &mut rng).unwrap();
        assert!(d < c.len());
        assert!(sys.place(&g, task, &[], &mut rng).is_none());
    }

    #[test]
    fn optimal_config_meets_true_slo() {
        let g = gt();
        let mut o = Optimal::default();
        let svc = g.zoo().service_by_name("BERT").unwrap();
        let task = g.zoo().task_by_name("LSTM").unwrap().id;
        let (batch, frac, _) = o
            .best_config(&g, svc.id, svc.slo_secs(), 200.0, &[task])
            .expect("feasible at 200 QPS");
        let colo = [ColoWorkload::training(task, (1.0f64 - frac).max(0.01))];
        let p99 = g.p99_inference_latency(svc.id, batch, frac, &colo);
        assert!(batch as f64 / 200.0 + p99 <= svc.slo_secs() + 1e-9);
    }

    #[test]
    fn optimal_cache_hits() {
        let g = gt();
        let mut o = Optimal::default();
        let svc = &g.zoo().services()[0];
        let task = g.zoo().tasks()[0].id;
        let a = o.best_config(&g, svc.id, svc.slo_secs(), 200.0, &[task]);
        let b = o.best_config(&g, svc.id, svc.slo_secs(), 203.0, &[task]);
        assert_eq!(a, b, "nearby QPS buckets share the cache entry");
        assert_eq!(o.cache.len(), 1);
    }

    #[test]
    fn muxflow_scores_unobserved_as_average() {
        let g = gt();
        let mut rng = SimRng::seed(3);
        let sys = MuxFlow::new(&g, &mut rng);
        let svc = g.zoo().services()[0].id;
        let unobserved = g.zoo().unobserved_task_ids();
        let s1 = sys.pair_score(&g, svc, unobserved[0]);
        let s2 = sys.pair_score(&g, svc, unobserved[1]);
        // All unobserved tasks collapse to the same (average) score.
        assert_eq!(s1, s2);
        let profiled = g.zoo().profiled_task_ids();
        let p0 = sys.pair_score(&g, svc, profiled[0]);
        let p1 = sys.pair_score(&g, svc, profiled[1]);
        assert_ne!(p0, p1, "profiled tasks get distinct scores");
    }

    #[test]
    fn gpulets_underestimates_versus_mudi() {
        // gpulets sizes from solo curves: with a heavy co-located task
        // its fraction should not exceed Mudi's interference-aware one
        // by much — typically it is smaller, which is what causes its
        // violations.
        let g = gt();
        let mut rng = SimRng::seed(4);
        let mut gp = Gpulets::new(&g, &mut rng);
        let mut mu = MudiSystem::new(SystemKind::Mudi, &g, &mut rng);
        let svc = g.zoo().service_by_name("ResNet50").unwrap();
        let heavy = g.zoo().task_by_name("YOLOv5").unwrap().id;
        let view = DeviceView {
            device: 0,
            service: svc.id,
            qps: 250.0,
            slo_secs: svc.slo_secs(),
            tasks: vec![heavy],
            batch: 64,
            fraction: 0.5,
            measured_p99: None,
            mem_headroom_gb: 10.0,
        };
        let dg = gp.configure(&g, &view, &mut rng);
        let dm = mu.configure(&g, &view, &mut rng);
        assert!(!dm.pause_training);
        // Compare required fractions at the same batch via true curves:
        // the gpulets decision must ignore the co-location, so its
        // fraction reflects only solo needs.
        assert!(dg.fraction <= 0.95 && dg.fraction >= 0.05);
        assert!(dm.bo_iterations > 0);
    }
}
