//! The discrete-event cluster engine.
//!
//! Every device hosts one inference replica (service types round-robin
//! across devices) plus the training tasks the system under test
//! places there. The engine is event-driven with **analytic accrual**:
//! device state (QPS level, batch, GPU fractions, residents) is
//! piecewise-constant between events, so SLO-violation fractions and
//! training progress integrate in closed form from the ground-truth
//! model over each span — the same fitted-function replay the paper's
//! own 1000-GPU simulator uses (§7.1).
//!
//! Events: task arrivals (Philly-like process), task completions
//! (epoch-guarded, rescheduled on every reconfiguration), per-replica
//! QPS segment changes (which double as Monitor checks), and periodic
//! cluster-utilization samples.

use std::collections::HashMap;
use std::time::Instant;

use gpu_sim::{DeviceId, GpuDevice, InferenceInstance, ReconfigPolicy, ResidentId, TrainingProcess};
use mudi::policy::{FairState, QueueItem, QueuePolicy};
use mudi::{DeviceCandidate, Monitor};
use simcore::{normal_cdf, EventQueue, SimDuration, SimRng, SimTime};
use workloads::perf::DEVICE_MEMORY_GB;
use workloads::{
    BurstSchedule, FluctuatingQps, GroundTruth, PhillyArrivals, ServiceId, TaskId,
    Zoo,
};

use crate::job::{JobId, JobState, TrainingJob};
use crate::metrics::{ExperimentResult, ServiceMetrics};
use crate::systems::{build_system, ConfigDecision, DeviceView, Multiplexer, SystemKind};

/// Cluster scale presets matching §7.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterScale {
    /// The private physical cluster: 12 A100s, 300 training tasks.
    Physical,
    /// The simulated cluster: 1000 GPUs, 5000 tasks, arrivals ×80.
    Simulated,
}

/// Full run configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// System under test.
    pub system: SystemKind,
    /// Number of GPU devices.
    pub devices: usize,
    /// Number of training jobs to submit.
    pub jobs: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Global QPS multiplier (Fig. 15 uses 1×–4×).
    pub load_multiplier: f64,
    /// Optional burst schedule applied on top of the fluctuating QPS.
    pub burst: Option<BurstSchedule>,
    /// Queue policy for pending training tasks.
    pub policy: QueuePolicy,
    /// Mean dwell time of a QPS segment, seconds.
    pub qps_dwell_secs: f64,
    /// Base training-task arrival rate, tasks/second.
    pub arrival_rate: f64,
    /// Arrival scaling factor (×80 in the simulated cluster).
    pub arrival_scale: f64,
    /// Interval between cluster-utilization samples, seconds.
    pub util_sample_secs: f64,
    /// Safety cap on simulated time, seconds.
    pub max_sim_secs: f64,
}

impl ClusterConfig {
    /// The physical-cluster preset (12 GPUs, 300 tasks).
    pub fn physical(system: SystemKind, seed: u64) -> Self {
        ClusterConfig {
            system,
            devices: 12,
            jobs: 300,
            seed,
            load_multiplier: 1.0,
            burst: None,
            policy: QueuePolicy::Fcfs,
            qps_dwell_secs: 45.0,
            arrival_rate: 0.02,
            arrival_scale: 1.0,
            util_sample_secs: 300.0,
            max_sim_secs: 40.0 * 24.0 * 3600.0,
        }
    }

    /// The simulated-cluster preset (1000 GPUs, 5000 tasks, ×80).
    pub fn simulated(system: SystemKind, seed: u64) -> Self {
        ClusterConfig {
            system,
            devices: 1000,
            jobs: 5000,
            seed,
            load_multiplier: 1.0,
            burst: None,
            policy: QueuePolicy::Fcfs,
            qps_dwell_secs: 120.0,
            arrival_rate: 0.02,
            arrival_scale: 80.0,
            util_sample_secs: 900.0,
            max_sim_secs: 40.0 * 24.0 * 3600.0,
        }
    }

    /// A reduced-scale preset for tests and smoke benches.
    pub fn tiny(system: SystemKind, seed: u64) -> Self {
        ClusterConfig {
            system,
            devices: 6,
            jobs: 24,
            seed,
            load_multiplier: 1.0,
            burst: None,
            policy: QueuePolicy::Fcfs,
            qps_dwell_secs: 45.0,
            arrival_rate: 0.05,
            arrival_scale: 1.0,
            util_sample_secs: 600.0,
            max_sim_secs: 20.0 * 24.0 * 3600.0,
        }
    }

    /// Shrinks every task type's GPU-hours by `factor` — used by tests
    /// and smoke benches so runs finish quickly while exercising every
    /// code path. Applied through [`ClusterEngine::run_scaled`].
    pub fn scale(&self) -> ClusterScale {
        if self.devices >= 100 {
            ClusterScale::Simulated
        } else {
            ClusterScale::Physical
        }
    }
}

#[derive(Clone, Debug)]
enum Event {
    JobArrival(JobId),
    JobCompletion { job: JobId, epoch: u64 },
    QpsChange(usize),
    UtilSample,
    /// Forced retune, scheduled when a device pauses its training so
    /// the pause is re-evaluated even without a QPS trigger.
    Retune(usize),
}

/// Per-device engine-side state beyond the `GpuDevice` itself.
struct DeviceState {
    qps_gen: FluctuatingQps,
    monitor: Monitor,
    /// Last time this device's metrics were accrued.
    last_accrue: SimTime,
    /// Last accrued P99 batch latency (feedback for GSLICE).
    last_p99: Option<f64>,
    /// Last accrued batch-service utilization (`mean latency / fill`).
    last_util: f64,
    /// Last accrued per-request violation probability.
    last_pviol: f64,
    /// Whether co-located training is paused (SLO infeasibility or,
    /// for non-Mudi systems, memory overflow).
    training_paused: bool,
    /// Epoch counter invalidating stale completion events.
    epoch: u64,
    /// Last SLO-risk-triggered retune (throttled).
    last_risk_tune: SimTime,
    /// The system's current cap on the total training GPU share.
    training_share_cap: f64,
    /// When the current pause began (None while running).
    paused_since: Option<SimTime>,
    /// Whether a Retune event is already queued for this device
    /// (prevents the pause paths from multiplying heartbeats).
    retune_pending: bool,
}

/// The cluster engine.
pub struct ClusterEngine {
    config: ClusterConfig,
    gt: GroundTruth,
    system: Box<dyn Multiplexer>,
    devices: Vec<GpuDevice>,
    dstate: Vec<DeviceState>,
    jobs: Vec<TrainingJob>,
    queue: Vec<QueueItem<JobId>>,
    fair: FairState,
    events: EventQueue<Event>,
    rng: SimRng,
    services: HashMap<ServiceId, ServiceMetrics>,
    util_series: Vec<(f64, f64, f64)>,
    bo_iterations: Vec<usize>,
    placement_secs: Vec<f64>,
    iter_scale: f64,
    /// Per-placement log for the §5.4 optimality analysis: the task,
    /// the chosen device, and the candidate `(device, service)` set the
    /// selector saw.
    placement_log: Vec<(TaskId, usize, Vec<(usize, ServiceId)>)>,
}

impl ClusterEngine {
    /// Builds a cluster with the ground truth seeded from the config
    /// and the system's offline profiling already performed.
    pub fn new(config: ClusterConfig) -> Self {
        let gt = GroundTruth::new(Zoo::standard(), config.seed ^ 0xA100);
        let rng = SimRng::seed(config.seed);
        let system = build_system(config.system, &gt, &mut rng.fork("system"));
        let n_services = gt.zoo().services().len();

        let mut devices = Vec::with_capacity(config.devices);
        let mut dstate = Vec::with_capacity(config.devices);
        for d in 0..config.devices {
            let service = gt.zoo().services()[d % n_services].id;
            let slo = gt.zoo().service(service).slo;
            let mut dev = GpuDevice::new(DeviceId(d), DEVICE_MEMORY_GB);
            let mut qps_gen = FluctuatingQps::per_replica(rng.fork_indexed("qps", d));
            let qps = qps_gen.current() * config.load_multiplier;
            dev.deploy_inference(
                &gt,
                SimTime::ZERO,
                InferenceInstance::new(service, 16, 0.6, qps),
            );
            devices.push(dev);
            let _ = &mut qps_gen;
            dstate.push(DeviceState {
                qps_gen,
                monitor: Monitor::new(0.5, slo),
                last_accrue: SimTime::ZERO,
                last_p99: None,
                last_util: 0.0,
                last_pviol: 0.0,
                training_paused: false,
                epoch: 0,
                last_risk_tune: SimTime::ZERO,
                training_share_cap: 1.0,
                paused_since: None,
                retune_pending: false,
            });
        }

        ClusterEngine {
            config,
            gt,
            system,
            devices,
            dstate,
            jobs: Vec::new(),
            queue: Vec::new(),
            fair: FairState::new(),
            events: EventQueue::new(),
            rng,
            services: HashMap::new(),
            util_series: Vec::new(),
            bo_iterations: Vec::new(),
            placement_secs: Vec::new(),
            iter_scale: 1.0,
            placement_log: Vec::new(),
        }
    }

    /// The ground-truth model backing this run.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.gt
    }

    /// Runs the experiment to completion and returns the results.
    pub fn run(self) -> ExperimentResult {
        self.run_scaled(1.0)
    }

    /// Runs with every job's iteration count multiplied by
    /// `iteration_scale` (tests use ≪1 to finish quickly).
    pub fn run_scaled(self, iteration_scale: f64) -> ExperimentResult {
        self.run_with_log(iteration_scale).0
    }

    /// Like [`ClusterEngine::run_scaled`], additionally returning the
    /// placement log `(task, chosen device)` for the §5.4 optimality
    /// analysis.
    pub fn run_with_log(
        mut self,
        iteration_scale: f64,
    ) -> (ExperimentResult, Vec<(TaskId, usize, Vec<(usize, ServiceId)>)>) {
        self.iter_scale = iteration_scale.clamp(1e-6, 1.0);
        let wall_start = Instant::now();
        self.submit_jobs();
        self.schedule_initial_events();

        let debug = std::env::var("MUDI_DEBUG_EVENTS").is_ok();
        let mut last_finish = SimTime::ZERO;
        while let Some((now, event)) = self.events.pop() {
            if debug && self.events.fired() % 200_000 == 0 {
                eprintln!(
                    "[engine] events={} t={:.3}s pending={} done={}/{} ev={:?}",
                    self.events.fired(),
                    now.as_secs(),
                    self.events.len(),
                    self.jobs.iter().filter(|j| j.state == JobState::Completed).count(),
                    self.jobs.len(),
                    event
                );
            }
            if now.as_secs() > self.config.max_sim_secs {
                break;
            }
            match event {
                Event::JobArrival(job) => self.on_arrival(now, job),
                Event::JobCompletion { job, epoch } => {
                    if self.on_completion(now, job, epoch) {
                        last_finish = now;
                    }
                }
                Event::QpsChange(d) => self.on_qps_change(now, d),
                Event::UtilSample => self.on_util_sample(now),
                Event::Retune(d) => {
                    self.dstate[d].retune_pending = false;
                    if self.dstate[d].training_paused {
                        self.reconfigure(now, d);
                        // Systems without unified-memory swapping can
                        // stay overcommitted indefinitely (e.g. a
                        // static split that never shrinks); after 30
                        // simulated minutes the operator evicts the
                        // training task back to the queue, as a real
                        // cluster would.
                        let stuck = self.dstate[d]
                            .paused_since
                            .map(|t0| now.since(t0).as_secs() > 1800.0)
                            .unwrap_or(false);
                        if self.dstate[d].training_paused
                            && stuck
                            && !self.config.system.manages_memory()
                        {
                            self.evict_trainings(now, d);
                        }
                    }
                }
            }
            if self.all_done() {
                break;
            }
        }

        let end = self.events.now();
        for d in 0..self.devices.len() {
            self.accrue(end, d);
            self.devices[d].finish(end);
        }
        let result = self.build_result(last_finish, wall_start.elapsed().as_secs_f64());
        let log = std::mem::take(&mut self.placement_log);
        (result, log)
    }

    // ------------------------------------------------------------------
    // Setup.
    // ------------------------------------------------------------------

    fn submit_jobs(&mut self) {
        let mut arrivals = PhillyArrivals::new(
            self.config.arrival_rate,
            self.config.arrival_scale,
            self.rng.fork("arrivals"),
        );
        let times = arrivals.generate(SimTime::ZERO, self.config.jobs);
        let weights: Vec<f64> = self
            .gt
            .zoo()
            .tasks()
            .iter()
            .map(|t| t.arrival_fraction)
            .collect();
        let mut task_rng = self.rng.fork("task-mix");
        for (i, &t) in times.iter().enumerate() {
            let task_idx = task_rng.pick_weighted(&weights);
            let task = self.gt.zoo().tasks()[task_idx].id;
            let total = ((self.gt.zoo().task(task).total_iterations() as f64 * self.iter_scale)
                .round() as u64)
                .max(10);
            let job = TrainingJob::new(JobId(i as u64), task, t, total);
            self.jobs.push(job);
            self.events.schedule_at(t, Event::JobArrival(JobId(i as u64)));
        }
    }

    fn schedule_initial_events(&mut self) {
        for d in 0..self.devices.len() {
            // First QPS segment change per device.
            let dwell = SimDuration::from_secs(
                self.rng.fork_indexed("dwell0", d).uniform(1.0, self.config.qps_dwell_secs),
            );
            self.events.schedule_at(SimTime::ZERO + dwell, Event::QpsChange(d));
        }
        self.events.schedule_at(
            SimTime::from_secs(self.config.util_sample_secs),
            Event::UtilSample,
        );
    }

    // ------------------------------------------------------------------
    // Analytic accrual.
    // ------------------------------------------------------------------

    /// Integrates SLO violations and training progress for device `d`
    /// over `[last_accrue, now]` under the current configuration.
    fn accrue(&mut self, now: SimTime, d: usize) {
        let dt = now.since(self.dstate[d].last_accrue).as_secs();
        self.dstate[d].last_accrue = now;
        if dt <= 0.0 {
            return;
        }
        let dev = &self.devices[d];
        let Some(inf) = dev.inference() else {
            return;
        };
        let (service, batch, frac, qps) = (inf.service, inf.batch, inf.gpu_fraction, inf.qps);
        let colo = dev.colo_for_inference();
        let slo = self.gt.zoo().service(service).slo_secs();

        // --- SLO violations. ---
        let mean = self.gt.inference_latency(service, batch, frac, &colo);
        let sigma = self.gt.effective_sigma(service, batch, frac, &colo);
        let p99 = mean * (2.326 * sigma).exp();
        self.dstate[d].last_p99 = Some(p99);
        self.dstate[d].last_util = if qps > 0.0 {
            mean / (batch as f64 / qps)
        } else {
            0.0
        };
        let p_violation = violation_probability(qps, batch, slo, mean, sigma);
        self.dstate[d].last_pviol = p_violation;
        let requests = qps * dt;
        let m = self.services.entry(service).or_default();
        m.requests += requests;
        m.violations += requests * p_violation;
        m.p99_stats.record(p99);

        // --- Training progress. ---
        if !self.dstate[d].training_paused {
            let mut advanced: Vec<(ResidentId, f64)> = Vec::new();
            for proc in dev.trainings() {
                let view = dev.colo_for_training(proc.id);
                let iter = self.gt.training_iteration(proc.task, proc.gpu_fraction, &view);
                let slow = dev.memory().training_slowdown(proc.id);
                advanced.push((proc.id, dt / (iter * slow)));
            }
            for (rid, iters) in advanced {
                if let Some(job) = self.jobs.get_mut(rid.0 as usize) {
                    job.completed_iterations += iters;
                }
                if let Some(proc) = self.devices[d].training_mut(rid) {
                    proc.advance(iters as u64);
                }
            }
        }

        // Utilization integrators see the (constant) current state.
        let gt = &self.gt;
        self.devices[d].record_utilization(gt, now);
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, now: SimTime, job: JobId) {
        let j = &self.jobs[job.0 as usize];
        let est = self.gt.zoo().task(j.task).gpu_hours * 3600.0 * self.iter_scale;
        self.queue.push(QueueItem {
            arrival: now,
            est_duration: SimDuration::from_secs(est),
            priority: j.priority,
            class: j.class,
            payload: job,
        });
        self.try_dispatch(now);
    }

    fn on_completion(&mut self, now: SimTime, job: JobId, epoch: u64) -> bool {
        let device = match self.jobs[job.0 as usize].device {
            Some(d) => d,
            None => return false,
        };
        if self.dstate[device].epoch != epoch {
            return false; // Stale event; a reconfiguration rescheduled it.
        }
        self.accrue(now, device);
        let j = &self.jobs[job.0 as usize];
        if j.remaining_iterations() > 1.0 {
            // Progress drifted from the estimate (noise, pauses):
            // reschedule from the true remaining work.
            self.reschedule_completions(now, device);
            return false;
        }
        let rid = ResidentId(job.0);
        self.devices[device].remove_training(now, rid);
        self.jobs[job.0 as usize].finish(now);
        let est = now - self.jobs[job.0 as usize].submitted;
        self.fair
            .record(self.jobs[job.0 as usize].class, est.as_secs());
        let cap = self.dstate[device].training_share_cap;
        self.devices[device].rebalance_training_fractions(cap);
        self.refresh_memory_pause(now, device);
        self.reconfigure(now, device);
        self.try_dispatch(now);
        true
    }

    fn on_qps_change(&mut self, now: SimTime, d: usize) {
        self.accrue(now, d);
        let (dwell, raw_qps) = self.dstate[d].qps_gen.next_segment();
        let burst = self
            .config
            .burst
            .as_ref()
            .map_or(1.0, |b| b.multiplier_at(now));
        let qps = raw_qps * self.config.load_multiplier * burst;
        self.devices[d].set_inference_qps(&self.gt, now, qps);

        // Monitor check (§5.3.2): retune when drift exceeds 50 %.
        let triggered = self.dstate[d].monitor.observe_qps(qps).is_some();
        // SLO-risk triggers (§5.3.2): tail latency near the SLO, or the
        // replica's service rate close to the arrival rate (queueing
        // pressure a real monitor would see as rising latency).
        let throttled = now.since(self.dstate[d].last_risk_tune).as_secs() <= 30.0;
        let risk = !throttled
            && (self.dstate[d]
                .last_p99
                .map(|p| p > 0.95 * self.device_slo(d))
                .unwrap_or(false)
                || self.dstate[d].last_util > 0.85
                || self.dstate[d].last_pviol > 0.02);
        if triggered || risk {
            if risk {
                self.dstate[d].last_risk_tune = now;
            }
            self.reconfigure(now, d);
        }

        // Cap the next dwell so bursts (Fig. 16) are noticed promptly.
        let mut next = dwell;
        if let Some(b) = &self.config.burst {
            if let Some(t) = b.next_change_after(now) {
                next = next.min(t - now + SimDuration::from_secs(0.1));
            }
        }
        self.events
            .schedule_at(now + next.max(SimDuration::from_secs(0.5)), Event::QpsChange(d));
    }

    fn on_util_sample(&mut self, now: SimTime) {
        let mut sm = 0.0;
        let mut mem = 0.0;
        for dev in &self.devices {
            sm += dev.sm_utilization(&self.gt);
            mem += dev.memory().utilization();
        }
        let n = self.devices.len() as f64;
        self.util_series.push((now.as_secs(), sm / n, mem / n));
        if !self.all_done() {
            self.events.schedule_in(
                SimDuration::from_secs(self.config.util_sample_secs),
                Event::UtilSample,
            );
        }
    }

    // ------------------------------------------------------------------
    // Scheduling and configuration.
    // ------------------------------------------------------------------

    fn candidates(&self) -> Vec<DeviceCandidate> {
        let max_t = self.config.system.max_trainings();
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, dev)| dev.trainings().len() < max_t)
            .map(|(i, dev)| {
                let service = dev.inference().expect("replica deployed").service;
                DeviceCandidate {
                    device: i,
                    service,
                    existing_tasks: dev.trainings().iter().map(|t| t.task).collect(),
                    mem_headroom_gb: (dev.memory().capacity_gb()
                        - dev.memory().total_demand_gb())
                    .max(-20.0),
                }
            })
            .collect()
    }

    fn try_dispatch(&mut self, now: SimTime) {
        loop {
            if self.queue.is_empty() {
                return;
            }
            let candidates = self.candidates();
            if candidates.is_empty() {
                return;
            }
            let Some(idx) = self.config.policy.next_index(&self.queue, &self.fair) else {
                return;
            };
            let job_id = self.queue[idx].payload;
            let task = self.jobs[job_id.0 as usize].task;

            let t0 = Instant::now();
            let placed = self
                .system
                .place(&self.gt, task, &candidates, &mut self.rng);
            self.placement_secs.push(t0.elapsed().as_secs_f64());

            let Some(device) = placed else {
                return; // Head of queue cannot be placed; wait.
            };
            self.queue.remove(idx);
            self.placement_log.push((
                task,
                device,
                candidates.iter().map(|c| (c.device, c.service)).collect(),
            ));

            self.accrue(now, device);
            let total = self.jobs[job_id.0 as usize].total_iterations;
            let proc = TrainingProcess::new(ResidentId(job_id.0), task, 0.1, total);
            self.devices[device]
                .add_training(&self.gt, now, proc)
                .expect("candidate had a free slot");
            self.jobs[job_id.0 as usize].start(now, device);
            let cap = self.dstate[device].training_share_cap;
            self.devices[device].rebalance_training_fractions(cap);
            self.refresh_memory_pause(now, device);
            self.reconfigure(now, device);
        }
    }

    /// The end-to-end P99 a latency monitor would measure on device
    /// `d`: batch P99 plus tail fill wait, inflated by queueing once
    /// utilization approaches 1 (feedback systems like GSLICE consume
    /// this signal).
    fn observed_p99(&self, d: usize) -> Option<f64> {
        let p99 = self.dstate[d].last_p99?;
        let inf = self.devices[d].inference()?;
        let fill = if inf.qps > 0.0 {
            inf.batch as f64 / inf.qps
        } else {
            0.0
        };
        let queue_factor = 1.0 + 10.0 * (self.dstate[d].last_util - 0.85).max(0.0);
        Some((p99 + fill * 5.0 / 6.0) * queue_factor)
    }

    fn device_slo(&self, d: usize) -> f64 {
        let svc = self.devices[d].inference().expect("replica deployed").service;
        self.gt.zoo().service(svc).slo_secs()
    }

    /// Runs the system's configure step for device `d` and applies the
    /// decision: batch (free), fraction (visible downtime accounted as
    /// violated requests), training pause state, and memory effects.
    fn reconfigure(&mut self, now: SimTime, d: usize) {
        self.accrue(now, d);
        let dev = &self.devices[d];
        let inf = dev.inference().expect("replica deployed");
        let view = DeviceView {
            device: d,
            service: inf.service,
            qps: inf.qps,
            slo_secs: self.gt.zoo().service(inf.service).slo_secs(),
            tasks: dev.trainings().iter().map(|t| t.task).collect(),
            batch: inf.batch,
            fraction: inf.gpu_fraction,
            measured_p99: self.observed_p99(d),
            mem_headroom_gb: dev.memory().capacity_gb() - dev.memory().total_demand_gb(),
        };
        let qps = inf.qps;
        let old_fraction = inf.gpu_fraction;
        let decision: ConfigDecision = self.system.configure(&self.gt, &view, &mut self.rng);
        if decision.bo_iterations > 0 {
            self.bo_iterations.push(decision.bo_iterations);
        }

        // Apply the batch (free) and memory demand.
        self.devices[d].set_inference_batch(&self.gt, now, decision.batch);

        // Apply the fraction; a change costs visible downtime, accrued
        // as violated requests at the current QPS. Hysteresis: tiny
        // adjustments are not worth an instance hand-off — keep the old
        // partition unless the move exceeds 5 GPU-percentage points or
        // shrinks below a requirement increase.
        if (decision.fraction - old_fraction).abs() > 0.05
            || (decision.fraction > old_fraction && decision.pause_training)
        {
            self.devices[d].set_inference_fraction(decision.fraction);
            let downtime = match self.config.system {
                SystemKind::Gslice | SystemKind::Gpulets | SystemKind::MuxFlow => {
                    SimDuration::from_secs(1.0)
                }
                _ => ReconfigPolicy::ShadowInstance.visible_downtime(),
            };
            let svc = self.devices[d].inference().expect("replica").service;
            let m = self.services.entry(svc).or_default();
            let lost = qps * downtime.as_secs();
            m.requests += lost;
            m.violations += lost;
        }
        self.dstate[d].training_share_cap = decision.training_share_cap;
        self.devices[d].rebalance_training_fractions(decision.training_share_cap);

        // Pause bookkeeping: SLO infeasibility (any system) or memory
        // overflow (systems without Mudi's Memory Manager). A paused
        // device re-evaluates soon — pausing is meant to be transient
        // ("until suitable resources become available", §5.3.2).
        self.dstate[d].training_paused = decision.pause_training;
        self.refresh_memory_pause(now, d);
        if self.dstate[d].training_paused {
            if self.dstate[d].paused_since.is_none() {
                self.dstate[d].paused_since = Some(now);
            }
            self.schedule_retune(d);
        } else {
            self.dstate[d].paused_since = None;
        }
        self.dstate[d].monitor.mark_tuned(qps);
        self.reschedule_completions(now, d);
    }

    /// For systems without unified-memory swapping, training cannot run
    /// while the device is overcommitted.
    fn refresh_memory_pause(&mut self, now: SimTime, d: usize) {
        if !self.config.system.manages_memory() && self.devices[d].memory().is_overflowed() {
            if !self.dstate[d].training_paused {
                self.dstate[d].training_paused = true;
                // Keep the original pause start across reconfigure's
                // transient unpause/repause so eviction can trigger.
                if self.dstate[d].paused_since.is_none() {
                    self.dstate[d].paused_since = Some(now);
                }
                // Memory pauses need their own re-evaluation heartbeat:
                // nothing else may touch this device for a long time.
                self.schedule_retune(d);
            }
        } else if !self.config.system.manages_memory() {
            // Overflow cleared: resume unless paused for SLO reasons —
            // heuristic systems only pause for memory.
            self.dstate[d].training_paused = false;
            self.dstate[d].paused_since = None;
        }
    }

    /// Schedules a single pending Retune heartbeat for `d`.
    fn schedule_retune(&mut self, d: usize) {
        if !self.dstate[d].retune_pending {
            self.dstate[d].retune_pending = true;
            self.events
                .schedule_in(SimDuration::from_secs(60.0), Event::Retune(d));
        }
    }

    /// Evicts every training resident of `d` back to the pending queue
    /// (keeping their progress), then redistributes them.
    fn evict_trainings(&mut self, now: SimTime, d: usize) {
        self.accrue(now, d);
        let ids: Vec<ResidentId> = self.devices[d].trainings().iter().map(|t| t.id).collect();
        for rid in ids {
            self.devices[d].remove_training(now, rid);
            let job = &mut self.jobs[rid.0 as usize];
            job.state = JobState::Queued;
            job.device = None;
            let est = self.gt.zoo().task(job.task).gpu_hours * 3600.0 * self.iter_scale;
            let item = QueueItem {
                arrival: job.submitted,
                est_duration: SimDuration::from_secs(est),
                priority: job.priority,
                class: job.class,
                payload: JobId(rid.0),
            };
            self.queue.push(item);
        }
        self.dstate[d].training_paused = false;
        self.dstate[d].paused_since = None;
        self.dstate[d].epoch += 1; // Invalidate stale completions.
        self.try_dispatch(now);
    }

    /// Re-derives completion events for every training resident on `d`
    /// from its current progress and rate; bumps the epoch so stale
    /// events are ignored.
    fn reschedule_completions(&mut self, now: SimTime, d: usize) {
        self.dstate[d].epoch += 1;
        let epoch = self.dstate[d].epoch;
        if self.dstate[d].training_paused {
            return; // No completion while paused; resume reschedules.
        }
        let dev = &self.devices[d];
        let mut to_schedule = Vec::new();
        for proc in dev.trainings() {
            let job = &self.jobs[proc.id.0 as usize];
            let view = dev.colo_for_training(proc.id);
            let iter = self.gt.training_iteration(proc.task, proc.gpu_fraction, &view);
            let slow = dev.memory().training_slowdown(proc.id);
            let remaining = job.remaining_iterations() * iter * slow;
            to_schedule.push((proc.id, remaining.max(1e-3)));
        }
        for (rid, secs) in to_schedule {
            self.events.schedule_at(
                now + SimDuration::from_secs(secs),
                Event::JobCompletion {
                    job: JobId(rid.0),
                    epoch,
                },
            );
        }
    }

    fn all_done(&self) -> bool {
        !self.jobs.is_empty() && self.jobs.iter().all(|j| j.state == JobState::Completed)
    }

    // ------------------------------------------------------------------
    // Results.
    // ------------------------------------------------------------------

    fn build_result(&mut self, last_finish: SimTime, wall: f64) -> ExperimentResult {
        let mut result = ExperimentResult {
            system: self.config.system.name().to_string(),
            services: std::mem::take(&mut self.services),
            ..Default::default()
        };
        let first_submit = self
            .jobs
            .iter()
            .map(|j| j.submitted)
            .min()
            .unwrap_or(SimTime::ZERO);
        result.makespan_secs = last_finish.since(first_submit).as_secs();
        for j in &self.jobs {
            if let Some(ct) = j.completion_time() {
                result.ct.record(ct.as_secs());
                result.jobs_completed += 1;
            }
            if let Some(w) = j.waiting_time() {
                result.waiting.record(w.as_secs());
            }
        }
        result.jobs_submitted = self.jobs.len();

        let n = self.devices.len() as f64;
        result.mean_sm_util = self.devices.iter().map(GpuDevice::mean_sm_utilization).sum::<f64>() / n;
        result.mean_mem_util =
            self.devices.iter().map(GpuDevice::mean_mem_utilization).sum::<f64>() / n;
        result.util_series = std::mem::take(&mut self.util_series);

        // Swap accounting per service (Tab. 4).
        let mut frac_by_service: HashMap<ServiceId, (f64, usize)> = HashMap::new();
        let mut transfer_sum = 0.0;
        let mut transfer_events = 0u64;
        for dev in &self.devices {
            let svc = dev.inference().expect("replica").service;
            let e = frac_by_service.entry(svc).or_insert((0.0, 0));
            e.0 += dev.memory().overflow_time_fraction();
            e.1 += 1;
            let s = dev.memory().stats();
            transfer_sum += s.total_transfer_secs;
            transfer_events += s.swap_in_events + s.swap_out_events;
        }
        result.swap_time_fraction = frac_by_service
            .into_iter()
            .map(|(s, (sum, n))| (s, sum / n as f64))
            .collect();
        result.mean_swap_transfer_secs = if transfer_events == 0 {
            0.0
        } else {
            transfer_sum / transfer_events as f64
        };

        result.overhead.bo_iterations = std::mem::take(&mut self.bo_iterations);
        result.overhead.placement_secs = std::mem::take(&mut self.placement_secs);
        result.wall_clock_secs = wall;
        result
    }
}

/// Per-request SLO-violation probability under a constant
/// configuration.
///
/// A request waits `u · b/W` for its batch to fill (`u` its position)
/// and then experiences the log-normal batch latency `L · ε`. The
/// probability is averaged over three batch positions; an unstable
/// service (`L ≥ b/W`, batches finishing slower than they form) is
/// driven toward certain violation.
pub fn violation_probability(qps: f64, batch: u32, slo: f64, mean: f64, sigma: f64) -> f64 {
    if qps <= 0.0 {
        return 0.0;
    }
    let fill = batch as f64 / qps;
    let mut p = 0.0;
    for u in [1.0 / 6.0, 0.5, 5.0 / 6.0] {
        let budget = slo - u * fill;
        p += if budget <= 0.0 {
            1.0
        } else {
            let z = (budget / mean).ln() / sigma.max(1e-6);
            1.0 - normal_cdf(z)
        };
    }
    let mut p = p / 3.0;
    // Stability: sustained utilization near or above 1 grows the queue
    // and eventually violates every request; the penalty ramps from
    // 95 % utilization (transient queueing absorbs brief overloads).
    let util = mean / fill;
    if util > 0.95 {
        p = p.max(((util - 0.95) * 2.5).min(1.0));
    }
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_probability_shapes() {
        // Comfortable: tiny latency, loose SLO.
        let low = violation_probability(200.0, 16, 0.150, 0.010, 0.08);
        assert!(low < 0.01, "low {low}");
        // Budget blown by the fill wait alone.
        let high = violation_probability(10.0, 512, 0.150, 0.010, 0.08);
        assert!(high > 0.99, "high {high}");
        // Unstable service.
        let unstable = violation_probability(1000.0, 16, 0.5, 0.10, 0.05);
        assert!(unstable > 0.5, "unstable {unstable}");
        // No load, no violations.
        assert_eq!(violation_probability(0.0, 16, 0.1, 0.01, 0.05), 0.0);
    }

    #[test]
    fn violation_probability_monotone_in_latency() {
        let mut last = 0.0;
        for mean in [0.01, 0.03, 0.06, 0.1, 0.2] {
            let p = violation_probability(200.0, 16, 0.150, mean, 0.08);
            assert!(p >= last, "p {p} at mean {mean}");
            last = p;
        }
    }

    #[test]
    fn tiny_random_cluster_completes_all_jobs() {
        let engine = ClusterEngine::new(ClusterConfig::tiny(SystemKind::Random, 1));
        let result = engine.run_scaled(0.002);
        assert_eq!(result.jobs_completed, result.jobs_submitted);
        assert!(result.makespan_secs > 0.0);
        assert!(result.ct.count() > 0);
        assert!(result.overall_violation_rate() <= 1.0);
        assert!(result.mean_sm_util > 0.0);
    }

    #[test]
    fn tiny_gslice_cluster_completes() {
        let engine = ClusterEngine::new(ClusterConfig::tiny(SystemKind::Gslice, 2));
        let result = engine.run_scaled(0.002);
        assert_eq!(result.jobs_completed, result.jobs_submitted);
        assert!(result.mean_ct_hours() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ClusterEngine::new(ClusterConfig::tiny(SystemKind::Random, 7)).run_scaled(0.002);
        let b = ClusterEngine::new(ClusterConfig::tiny(SystemKind::Random, 7)).run_scaled(0.002);
        assert_eq!(a.jobs_completed, b.jobs_completed);
        assert!((a.makespan_secs - b.makespan_secs).abs() < 1e-6);
        assert!((a.overall_violation_rate() - b.overall_violation_rate()).abs() < 1e-12);
    }

    #[test]
    fn waiting_time_appears_under_contention() {
        // Many jobs on few devices must queue.
        let mut cfg = ClusterConfig::tiny(SystemKind::Random, 3);
        cfg.devices = 2;
        cfg.jobs = 12;
        let result = ClusterEngine::new(cfg).run_scaled(0.002);
        assert_eq!(result.jobs_completed, 12);
        assert!(result.waiting.max().unwrap_or(0.0) > 0.0, "someone should wait");
    }

    #[test]
    fn load_multiplier_raises_violations_for_adaptive_system() {
        // Note: the Random baseline's *fixed* batch 64 means higher QPS
        // can actually shrink its batch-fill wait and reduce violations;
        // the monotonicity claim of Fig. 15 is about adaptive systems,
        // so test it on GSLICE (adaptive batch, feedback partitioning).
        let run = |mult: f64| {
            let mut cfg = ClusterConfig::tiny(SystemKind::Gslice, 5);
            cfg.jobs = 10;
            cfg.load_multiplier = mult;
            ClusterEngine::new(cfg).run_scaled(0.002)
        };
        let base = run(1.0);
        let heavy = run(4.0);
        assert!(
            heavy.overall_violation_rate() >= base.overall_violation_rate(),
            "heavy {} vs base {}",
            heavy.overall_violation_rate(),
            base.overall_violation_rate()
        );
    }
}
