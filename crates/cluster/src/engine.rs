//! The discrete-event cluster engine.
//!
//! Every device hosts one inference replica (service types round-robin
//! across devices) plus the training tasks the system under test
//! places there. The engine is event-driven with **analytic accrual**:
//! device state (QPS level, batch, GPU fractions, residents) is
//! piecewise-constant between events, so SLO-violation fractions and
//! training progress integrate in closed form from the ground-truth
//! model over each span — the same fitted-function replay the paper's
//! own 1000-GPU simulator uses (§7.1).
//!
//! Events: task arrivals (Philly-like process), task completions
//! (epoch-guarded, rescheduled on every reconfiguration), per-replica
//! QPS segment changes (which double as Monitor checks), and periodic
//! cluster-utilization samples.

use std::collections::HashMap;
use std::time::Instant;

use gpu_sim::{
    DeviceId, GpuDevice, InferenceInstance, ReconfigPolicy, ResidentId, StandbyInstance,
    TrainingProcess, MPS_RESTART_SECS, SHADOW_SWITCH_SECS,
};
use mudi::policy::{FairState, QueueItem, QueuePolicy};
use mudi::{CircuitBreaker, DeviceCandidate, Monitor, ReliabilityPrior, RetuneGuard};
use resilience::{
    CheckpointTracker, FaultDomain, FaultKind, FaultProfile, FaultSchedule, RecoveryPolicy,
};
use simcore::{normal_cdf, EventQueue, SimDuration, SimRng, SimTime, Topology, TopologyShape};
use workloads::perf::DEVICE_MEMORY_GB;
use workloads::{
    BurstSchedule, FluctuatingQps, GroundTruth, PhillyArrivals, ServiceId, TaskId, Zoo,
};

use crate::job::{JobId, JobState, TrainingJob};
use crate::metrics::{ExperimentResult, FaultMetrics, ServiceMetrics};
use crate::systems::{build_system, ConfigDecision, DeviceView, Multiplexer, SystemKind};

/// Effective-compute factor of a freshly repaired device during its
/// burn-in window (reduced clocks while the driver re-validates
/// memory); cleared after [`RecoveryPolicy::degraded_hold`].
const POST_REPAIR_FACTOR: f64 = 0.85;

/// Cluster scale presets matching §7.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterScale {
    /// The private physical cluster: 12 A100s, 300 training tasks.
    Physical,
    /// The simulated cluster: 1000 GPUs, 5000 tasks, arrivals ×80.
    Simulated,
}

/// Full run configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// System under test.
    pub system: SystemKind,
    /// Number of GPU devices.
    pub devices: usize,
    /// Number of training jobs to submit.
    pub jobs: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Global QPS multiplier (Fig. 15 uses 1×–4×).
    pub load_multiplier: f64,
    /// Optional burst schedule applied on top of the fluctuating QPS.
    pub burst: Option<BurstSchedule>,
    /// Queue policy for pending training tasks.
    pub policy: QueuePolicy,
    /// Mean dwell time of a QPS segment, seconds.
    pub qps_dwell_secs: f64,
    /// Base training-task arrival rate, tasks/second.
    pub arrival_rate: f64,
    /// Arrival scaling factor (×80 in the simulated cluster).
    pub arrival_scale: f64,
    /// Interval between cluster-utilization samples, seconds.
    pub util_sample_secs: f64,
    /// Safety cap on simulated time, seconds.
    pub max_sim_secs: f64,
    /// Optional fault injection + recovery profile. `None` reproduces
    /// the paper's fault-free runs exactly.
    pub faults: Option<FaultProfile>,
    /// The rack/node hierarchy devices are laid out over. Defaults to
    /// [`TopologyShape::from_env`] (`MUDI_TOPOLOGY=RxN`, else 4×2).
    /// Only consulted when faults are injected: correlated outages
    /// expand over it, and reliability-aware systems stripe same-
    /// service replicas across racks. Fault-free runs keep the paper's
    /// flat layout regardless, so topology never perturbs the
    /// fault-free reproduction.
    pub topology: TopologyShape,
}

impl ClusterConfig {
    /// The physical-cluster preset (12 GPUs, 300 tasks).
    pub fn physical(system: SystemKind, seed: u64) -> Self {
        ClusterConfig {
            system,
            devices: 12,
            jobs: 300,
            seed,
            load_multiplier: 1.0,
            burst: None,
            policy: QueuePolicy::Fcfs,
            qps_dwell_secs: 45.0,
            arrival_rate: 0.02,
            arrival_scale: 1.0,
            util_sample_secs: 300.0,
            max_sim_secs: 40.0 * 24.0 * 3600.0,
            faults: None,
            topology: TopologyShape::from_env(),
        }
    }

    /// The simulated-cluster preset (1000 GPUs, 5000 tasks, ×80).
    pub fn simulated(system: SystemKind, seed: u64) -> Self {
        ClusterConfig {
            system,
            devices: 1000,
            jobs: 5000,
            seed,
            load_multiplier: 1.0,
            burst: None,
            policy: QueuePolicy::Fcfs,
            qps_dwell_secs: 120.0,
            arrival_rate: 0.02,
            arrival_scale: 80.0,
            util_sample_secs: 900.0,
            max_sim_secs: 40.0 * 24.0 * 3600.0,
            faults: None,
            topology: TopologyShape::from_env(),
        }
    }

    /// A reduced-scale preset for tests and smoke benches.
    pub fn tiny(system: SystemKind, seed: u64) -> Self {
        ClusterConfig {
            system,
            devices: 6,
            jobs: 24,
            seed,
            load_multiplier: 1.0,
            burst: None,
            policy: QueuePolicy::Fcfs,
            qps_dwell_secs: 45.0,
            arrival_rate: 0.05,
            arrival_scale: 1.0,
            util_sample_secs: 600.0,
            max_sim_secs: 20.0 * 24.0 * 3600.0,
            faults: None,
            topology: TopologyShape::from_env(),
        }
    }

    /// Enables fault injection with the given profile.
    pub fn with_faults(mut self, profile: FaultProfile) -> Self {
        self.faults = Some(profile);
        self
    }

    /// Shrinks every task type's GPU-hours by `factor` — used by tests
    /// and smoke benches so runs finish quickly while exercising every
    /// code path. Applied through [`ClusterEngine::run_scaled`].
    pub fn scale(&self) -> ClusterScale {
        if self.devices >= 100 {
            ClusterScale::Simulated
        } else {
            ClusterScale::Physical
        }
    }
}

#[derive(Clone, Debug)]
enum Event {
    JobArrival(JobId),
    JobCompletion {
        job: JobId,
        epoch: u64,
    },
    QpsChange(usize),
    UtilSample,
    /// Forced retune, scheduled when a device pauses its training so
    /// the pause is re-evaluated even without a QPS trigger.
    Retune(usize),
    /// Injected fault (index into the run's [`FaultSchedule`]).
    Fault(usize),
    /// A failed device comes back into service.
    DeviceRepair(usize),
    /// A degraded window (slowdown or post-repair burn-in) ends. The
    /// token invalidates stale events superseded by a newer window.
    SlowdownEnd {
        device: usize,
        token: u64,
    },
    /// A restarting training process finishes its cold restart.
    ProcessRestart {
        device: usize,
        job: JobId,
    },
    /// A warm-standby shadow instance finishes its bounded promote and
    /// starts serving a failed replica's traffic. The token invalidates
    /// promotes superseded by a host failure or an early repair.
    StandbyPromote {
        host: usize,
        token: u64,
    },
}

/// Per-device engine-side state beyond the `GpuDevice` itself.
struct DeviceState {
    qps_gen: FluctuatingQps,
    monitor: Monitor,
    /// Last time this device's metrics were accrued.
    last_accrue: SimTime,
    /// Last accrued P99 batch latency (feedback for GSLICE).
    last_p99: Option<f64>,
    /// Last accrued batch-service utilization (`mean latency / fill`).
    last_util: f64,
    /// Last accrued per-request violation probability.
    last_pviol: f64,
    /// Whether co-located training is paused (SLO infeasibility or,
    /// for non-Mudi systems, memory overflow).
    training_paused: bool,
    /// Epoch counter invalidating stale completion events.
    epoch: u64,
    /// Last SLO-risk-triggered retune (throttled).
    last_risk_tune: SimTime,
    /// The system's current cap on the total training GPU share.
    training_share_cap: f64,
    /// When the current pause began (None while running).
    paused_since: Option<SimTime>,
    /// Whether a Retune event is already queued for this device
    /// (prevents the pause paths from multiplying heartbeats).
    retune_pending: bool,
    /// Service pinned to this device (survives the replica's eviction
    /// while the device is down).
    service: ServiceId,
    /// Replica stashed while the device is down; its `qps` tracks the
    /// demand that is being dropped (zero-rated if failed over).
    stashed_inference: Option<InferenceInstance>,
    /// Failover traffic routed *to* this device from failed replicas.
    extra_qps: f64,
    /// Where this (failed) device's traffic went: `(survivor, share)`,
    /// undone at repair.
    rerouted: Vec<(usize, f64)>,
    /// Jobs pinned here awaiting repair (no-requeue recovery policies).
    stranded: Vec<JobId>,
    /// Residents mid-restart `(id, until)`: no progress accrues before
    /// `until`.
    restarting: Vec<(ResidentId, SimTime)>,
    /// Anti-thrashing dwell/cooldown on fault-triggered retunes.
    guard: RetuneGuard,
    /// Sheds best-effort training share while the device is degraded.
    breaker: CircuitBreaker,
    /// Bumped whenever a new degraded window starts, so a stale
    /// `SlowdownEnd` cannot clear a newer window.
    degrade_token: u64,
    /// Faults observed on this device (every class), feeding the
    /// reliability prior of reliability-aware selectors.
    faults_seen: usize,
    /// While this (failed) device's traffic is served by a promoted
    /// standby: the host device carrying it.
    standby_host: Option<usize>,
    /// The persistent standby-pool slot seeded on this device (the
    /// service it can cover); survives the host's own failure so the
    /// pool re-seeds at repair.
    standby_slot: Option<ServiceId>,
    /// A promote in flight on this host: `(failed device, token)`.
    pending_promote: Option<(usize, u64)>,
    /// Bumped per promote so a stale `StandbyPromote` event cannot
    /// activate a superseded hand-off.
    promote_token: u64,
}

/// Placement log entries for the §5.4 optimality analysis: the task,
/// the chosen device, and the candidate `(device, service)` set the
/// selector saw.
pub type PlacementLog = Vec<(TaskId, usize, Vec<(usize, ServiceId)>)>;

/// The cluster engine.
pub struct ClusterEngine {
    config: ClusterConfig,
    gt: GroundTruth,
    system: Box<dyn Multiplexer>,
    devices: Vec<GpuDevice>,
    dstate: Vec<DeviceState>,
    jobs: Vec<TrainingJob>,
    queue: Vec<QueueItem<JobId>>,
    fair: FairState,
    events: EventQueue<Event>,
    rng: SimRng,
    services: HashMap<ServiceId, ServiceMetrics>,
    util_series: Vec<(f64, f64, f64)>,
    bo_iterations: Vec<usize>,
    placement_secs: Vec<f64>,
    iter_scale: f64,
    /// Per-placement log for the §5.4 optimality analysis: the task,
    /// the chosen device, and the candidate `(device, service)` set the
    /// selector saw.
    placement_log: PlacementLog,
    /// Pre-drawn fault sequence for this run (empty without a profile).
    fault_schedule: FaultSchedule,
    /// Recovery strategy applied to every injected fault.
    recovery: RecoveryPolicy,
    /// Fault/recovery accounting, surfaced in the result.
    fmetrics: FaultMetrics,
    /// Per-job checkpoint trackers, indexed like `jobs`.
    ckpt: Vec<CheckpointTracker>,
    /// The rack/node hierarchy devices are addressed through.
    topo: Topology,
    /// Services currently in total outage (no live replica) and when
    /// the outage began; closed at repair or end-of-run.
    outage_start: HashMap<ServiceId, SimTime>,
}

impl ClusterEngine {
    /// Builds a cluster with the ground truth seeded from the config
    /// and the system's offline profiling already performed.
    pub fn new(config: ClusterConfig) -> Self {
        let gt = GroundTruth::new(Zoo::standard(), config.seed ^ 0xA100);
        let rng = SimRng::seed(config.seed);
        let system = build_system(config.system, &gt, &mut rng.fork("system"));
        let n_services = gt.zoo().services().len();
        let recovery = config
            .faults
            .map(|p| p.recovery)
            .unwrap_or_else(RecoveryPolicy::standard);
        let topo = Topology::new(config.topology, config.devices);
        let fault_schedule = match &config.faults {
            Some(profile) => FaultSchedule::generate_with_topology(
                &profile.faults,
                profile.correlated.as_ref(),
                &topo,
                config.max_sim_secs,
                &rng.fork("faults"),
            ),
            None => FaultSchedule::default(),
        };

        // Reliability-aware systems stripe same-service replicas across
        // racks so a single rack outage cannot take every replica down.
        // The striped layout only engages under fault injection: the
        // fault-free paper-reproduction runs keep the flat `d % n`
        // layout so topology never perturbs their results.
        let striped = config.faults.is_some() && config.system.reliability_aware();
        let service_idx: Vec<usize> = if striped {
            striped_service_assignment(&topo, config.devices, n_services)
        } else {
            (0..config.devices).map(|d| d % n_services).collect()
        };

        let mut devices = Vec::with_capacity(config.devices);
        let mut dstate = Vec::with_capacity(config.devices);
        for (d, &svc_idx) in service_idx.iter().enumerate() {
            let service = gt.zoo().services()[svc_idx].id;
            let slo = gt.zoo().service(service).slo;
            let mut dev = GpuDevice::new(DeviceId(d), DEVICE_MEMORY_GB);
            let mut qps_gen = FluctuatingQps::per_replica(rng.fork_indexed("qps", d));
            let qps = qps_gen.current() * config.load_multiplier;
            dev.deploy_inference(
                &gt,
                SimTime::ZERO,
                InferenceInstance::new(service, 16, 0.6, qps),
            );
            devices.push(dev);
            let _ = &mut qps_gen;
            dstate.push(DeviceState {
                qps_gen,
                monitor: Monitor::new(0.5, slo),
                last_accrue: SimTime::ZERO,
                last_p99: None,
                last_util: 0.0,
                last_pviol: 0.0,
                training_paused: false,
                epoch: 0,
                last_risk_tune: SimTime::ZERO,
                training_share_cap: 1.0,
                paused_since: None,
                retune_pending: false,
                service,
                stashed_inference: None,
                extra_qps: 0.0,
                rerouted: Vec::new(),
                stranded: Vec::new(),
                restarting: Vec::new(),
                guard: RetuneGuard::new(recovery.retune_dwell),
                breaker: CircuitBreaker::new(recovery.degraded_training_share.clamp(0.05, 1.0)),
                degrade_token: 0,
                faults_seen: 0,
                standby_host: None,
                standby_slot: None,
                pending_promote: None,
                promote_token: 0,
            });
        }

        // Seed the warm-standby pool: for each service, park
        // `pool_per_service` shadow instances on hosts whose primary is
        // a *different* service, preferring racks with the fewest
        // primaries of the covered service (so a rack blast that takes
        // every primary down leaves a standby alive elsewhere). Only
        // engages under fault injection with an enabled pool, keeping
        // every other run bit-identical.
        let mut fmetrics = FaultMetrics::default();
        if config.faults.is_some() && recovery.standby.is_enabled() {
            let standby = recovery.standby;
            for svc_def in gt.zoo().services() {
                let svc = svc_def.id;
                for _ in 0..standby.pool_per_service {
                    let host = (0..config.devices)
                        .filter(|&h| dstate[h].standby_slot.is_none() && dstate[h].service != svc)
                        .min_by_key(|&h| {
                            let rack = topo.rack_of(h);
                            let primaries_in_rack = topo
                                .devices_in_rack(rack)
                                .filter(|&d| dstate[d].service == svc)
                                .count();
                            let standbys_in_rack = topo
                                .devices_in_rack(rack)
                                .filter(|&d| dstate[d].standby_slot == Some(svc))
                                .count();
                            (primaries_in_rack, standbys_in_rack, h)
                        });
                    let Some(h) = host else {
                        break; // Every eligible device already hosts a slot.
                    };
                    dstate[h].standby_slot = Some(svc);
                    devices[h].seed_standby(
                        &gt,
                        SimTime::ZERO,
                        StandbyInstance::new(
                            svc,
                            16,
                            standby.reserve_fraction,
                            standby.preloaded_weights,
                        ),
                    );
                    fmetrics.standby_slots += 1;
                }
            }
        }

        ClusterEngine {
            config,
            gt,
            system,
            devices,
            dstate,
            jobs: Vec::new(),
            queue: Vec::new(),
            fair: FairState::new(),
            events: EventQueue::new(),
            rng,
            services: HashMap::new(),
            util_series: Vec::new(),
            bo_iterations: Vec::new(),
            placement_secs: Vec::new(),
            iter_scale: 1.0,
            placement_log: Vec::new(),
            fault_schedule,
            recovery,
            fmetrics,
            ckpt: Vec::new(),
            topo,
            outage_start: HashMap::new(),
        }
    }

    /// Replaces the generated fault schedule — tests inject hand-built
    /// scenarios (e.g. exactly one failure at a known time). Must be
    /// called before the run starts.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.fault_schedule = schedule;
    }

    /// Overrides the recovery policy (pairs with
    /// [`ClusterEngine::set_fault_schedule`] for injected scenarios).
    pub fn set_recovery_policy(&mut self, recovery: RecoveryPolicy) {
        self.recovery = recovery;
        for st in &mut self.dstate {
            st.guard = RetuneGuard::new(recovery.retune_dwell);
            st.breaker = CircuitBreaker::new(recovery.degraded_training_share.clamp(0.05, 1.0));
        }
    }

    /// The fault schedule this run will replay.
    pub fn fault_schedule(&self) -> &FaultSchedule {
        &self.fault_schedule
    }

    /// The ground-truth model backing this run.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.gt
    }

    /// The rack/node topology devices are addressed through.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Runs the experiment to completion and returns the results.
    pub fn run(self) -> ExperimentResult {
        self.run_scaled(1.0)
    }

    /// Runs with every job's iteration count multiplied by
    /// `iteration_scale` (tests use ≪1 to finish quickly).
    pub fn run_scaled(self, iteration_scale: f64) -> ExperimentResult {
        self.run_with_log(iteration_scale).0
    }

    /// Like [`ClusterEngine::run_scaled`], additionally returning the
    /// placement log `(task, chosen device)` for the §5.4 optimality
    /// analysis.
    pub fn run_with_log(mut self, iteration_scale: f64) -> (ExperimentResult, PlacementLog) {
        self.iter_scale = iteration_scale.clamp(1e-6, 1.0);
        let wall_start = Instant::now();
        self.submit_jobs();
        self.schedule_initial_events();

        let debug = std::env::var("MUDI_DEBUG_EVENTS").is_ok();
        let mut last_finish = SimTime::ZERO;
        while let Some((now, event)) = self.events.pop() {
            if debug && self.events.fired().is_multiple_of(200_000) {
                eprintln!(
                    "[engine] events={} t={:.3}s pending={} done={}/{} ev={:?}",
                    self.events.fired(),
                    now.as_secs(),
                    self.events.len(),
                    self.jobs
                        .iter()
                        .filter(|j| j.state == JobState::Completed)
                        .count(),
                    self.jobs.len(),
                    event
                );
            }
            if now.as_secs() > self.config.max_sim_secs {
                break;
            }
            match event {
                Event::JobArrival(job) => self.on_arrival(now, job),
                Event::JobCompletion { job, epoch } => {
                    if self.on_completion(now, job, epoch) {
                        last_finish = now;
                    }
                }
                Event::QpsChange(d) => self.on_qps_change(now, d),
                Event::UtilSample => self.on_util_sample(now),
                Event::Retune(d) => {
                    self.dstate[d].retune_pending = false;
                    if self.dstate[d].training_paused {
                        self.reconfigure(now, d);
                        // Systems without unified-memory swapping can
                        // stay overcommitted indefinitely (e.g. a
                        // static split that never shrinks); after 30
                        // simulated minutes the operator evicts the
                        // training task back to the queue, as a real
                        // cluster would.
                        let stuck = self.dstate[d]
                            .paused_since
                            .map(|t0| now.since(t0).as_secs() > 1800.0)
                            .unwrap_or(false);
                        if self.dstate[d].training_paused
                            && stuck
                            && !self.config.system.manages_memory()
                        {
                            self.evict_trainings(now, d);
                        }
                    }
                }
                Event::Fault(idx) => self.on_fault(now, idx),
                Event::DeviceRepair(d) => self.on_device_repair(now, d),
                Event::SlowdownEnd { device, token } => self.on_slowdown_end(now, device, token),
                Event::ProcessRestart { device, job } => self.on_process_restart(now, device, job),
                Event::StandbyPromote { host, token } => self.on_standby_promote(now, host, token),
            }
            if self.all_done() {
                break;
            }
        }

        let end = self.events.now();
        for d in 0..self.devices.len() {
            self.accrue(end, d);
            self.devices[d].finish(end);
        }
        self.close_open_outages(end);
        let result = self.build_result(last_finish, wall_start.elapsed().as_secs_f64());
        let log = std::mem::take(&mut self.placement_log);
        (result, log)
    }

    // ------------------------------------------------------------------
    // Setup.
    // ------------------------------------------------------------------

    fn submit_jobs(&mut self) {
        let mut arrivals = PhillyArrivals::new(
            self.config.arrival_rate,
            self.config.arrival_scale,
            self.rng.fork("arrivals"),
        );
        let times = arrivals.generate(SimTime::ZERO, self.config.jobs);
        let weights: Vec<f64> = self
            .gt
            .zoo()
            .tasks()
            .iter()
            .map(|t| t.arrival_fraction)
            .collect();
        let mut task_rng = self.rng.fork("task-mix");
        for (i, &t) in times.iter().enumerate() {
            let task_idx = task_rng.pick_weighted(&weights);
            let task = self.gt.zoo().tasks()[task_idx].id;
            let total = ((self.gt.zoo().task(task).total_iterations() as f64 * self.iter_scale)
                .round() as u64)
                .max(10);
            let job = TrainingJob::new(JobId(i as u64), task, t, total);
            self.jobs.push(job);
            // Checkpoint writes cost wall-clock time proportional to the
            // task's working set over the write bandwidth — but only
            // under fault injection; fault-free runs keep the paper's
            // free-checkpoint accounting bit-for-bit.
            let write_secs = if self.config.faults.is_some() {
                self.gt.training_memory_gb(task) / self.recovery.checkpoint_write_gbps.max(0.1)
            } else {
                0.0
            };
            // Resolve the per-task period: fixed policies pass through
            // unchanged; Young/Daly derives `sqrt(2·MTTF·write)` from
            // the device MTTF and this task's write cost.
            let mtbf_secs = self
                .config
                .faults
                .as_ref()
                .map_or(f64::INFINITY, |p| p.faults.mttf.as_secs());
            let period = self
                .recovery
                .checkpoint_period
                .resolve(mtbf_secs, write_secs);
            self.ckpt
                .push(CheckpointTracker::with_write_cost(period, 0.0, write_secs));
            self.events
                .schedule_at(t, Event::JobArrival(JobId(i as u64)));
        }
    }

    fn schedule_initial_events(&mut self) {
        for d in 0..self.devices.len() {
            // First QPS segment change per device.
            let dwell = SimDuration::from_secs(
                self.rng
                    .fork_indexed("dwell0", d)
                    .uniform(1.0, self.config.qps_dwell_secs),
            );
            self.events
                .schedule_at(SimTime::ZERO + dwell, Event::QpsChange(d));
        }
        self.events.schedule_at(
            SimTime::from_secs(self.config.util_sample_secs),
            Event::UtilSample,
        );
        for (i, ev) in self.fault_schedule.events().iter().enumerate() {
            self.events.schedule_at(ev.at, Event::Fault(i));
        }
    }

    // ------------------------------------------------------------------
    // Analytic accrual.
    // ------------------------------------------------------------------

    /// Integrates SLO violations and training progress for device `d`
    /// over `[last_accrue, now]` under the current configuration.
    fn accrue(&mut self, now: SimTime, d: usize) {
        let span_start = self.dstate[d].last_accrue;
        let dt = now.since(span_start).as_secs();
        self.dstate[d].last_accrue = now;
        if dt <= 0.0 {
            return;
        }
        if !self.devices[d].is_up() {
            // Down device: traffic addressed to its replica is dropped
            // — and every dropped request is an SLO violation — unless
            // failover moved the base demand to survivors or a promoted
            // standby is serving it (the host books that traffic).
            // Carried failover traffic (`extra_qps`) is always dropped
            // here.
            let st = &self.dstate[d];
            let base = if st.rerouted.is_empty() && st.standby_host.is_none() {
                st.stashed_inference.as_ref().map_or(0.0, |i| i.qps)
            } else {
                0.0
            };
            let q = base + st.extra_qps;
            if q > 0.0 {
                let m = self.services.entry(st.service).or_default();
                m.requests += q * dt;
                m.violations += q * dt;
                self.fmetrics.dropped_requests += q * dt;
            }
            let gt = &self.gt;
            self.devices[d].record_utilization(gt, now);
            return;
        }
        let dev = &self.devices[d];
        let Some(inf) = dev.inference() else {
            return;
        };
        let (service, batch, frac, qps) = (inf.service, inf.batch, inf.gpu_fraction, inf.qps);
        let colo = dev.colo_for_inference();
        let slo = self.gt.zoo().service(service).slo_secs();
        // Degraded devices deliver only `pf` of their effective compute:
        // the same model query at a proportionally smaller GPU share.
        let pf = dev.perf_factor();
        let frac = (frac * pf).max(0.01);

        // --- SLO violations. ---
        let mean = self.gt.inference_latency(service, batch, frac, &colo);
        let sigma = self.gt.effective_sigma(service, batch, frac, &colo);
        let p99 = mean * (2.326 * sigma).exp();
        self.dstate[d].last_p99 = Some(p99);
        self.dstate[d].last_util = if qps > 0.0 {
            mean / (batch as f64 / qps)
        } else {
            0.0
        };
        let p_violation = violation_probability(qps, batch, slo, mean, sigma);
        self.dstate[d].last_pviol = p_violation;
        let requests = qps * dt;
        let m = self.services.entry(service).or_default();
        m.requests += requests;
        m.violations += requests * p_violation;
        m.p99_stats.record(p99);
        // Failover traffic served here counts toward the reroute ledger.
        let extra = self.dstate[d].extra_qps.min(qps);
        if extra > 0.0 {
            self.fmetrics.rerouted_requests += extra * dt;
        }

        // --- Warm-standby accounting. ---
        if let Some(s) = dev.standby() {
            // The reserved slice is charged for the whole span, active
            // or idle: the pool's standing GPU% cost.
            self.fmetrics.standby_reserved_gpu_secs += s.reserve_fraction * dt;
            if s.is_active() {
                let (s_service, s_batch, s_qps) = (s.service, s.batch, s.qps);
                let s_frac = (s.reserve_fraction * pf).max(0.01);
                let s_colo = dev.colo_for_standby();
                let s_slo = self.gt.zoo().service(s_service).slo_secs();
                let s_mean = self
                    .gt
                    .inference_latency(s_service, s_batch, s_frac, &s_colo);
                let s_sigma = self.gt.effective_sigma(s_service, s_batch, s_frac, &s_colo);
                let s_p99 = s_mean * (2.326 * s_sigma).exp();
                let p_viol = violation_probability(s_qps, s_batch, s_slo, s_mean, s_sigma);
                let m = self.services.entry(s_service).or_default();
                m.requests += s_qps * dt;
                m.violations += s_qps * dt * p_viol;
                m.p99_stats.record(s_p99);
                self.fmetrics.standby_served_requests += s_qps * dt;
            }
        }

        // --- Training progress. ---
        if !self.dstate[d].training_paused {
            let mut advanced: Vec<(ResidentId, f64, f64)> = Vec::new();
            for proc in dev.trainings() {
                // A restarting process makes no progress until its
                // restart completes; clip the span accordingly.
                let run_dt = match self.dstate[d]
                    .restarting
                    .iter()
                    .find(|(id, _)| *id == proc.id)
                {
                    Some(&(_, until)) => now.since(until.max(span_start)).as_secs().max(0.0),
                    None => dt,
                };
                if run_dt <= 0.0 {
                    continue;
                }
                let view = dev.colo_for_training(proc.id);
                let eff = (proc.gpu_fraction * pf).max(1e-3);
                let iter = self.gt.training_iteration(proc.task, eff, &view);
                let slow = dev.memory().training_slowdown(proc.id);
                // Checkpoint writes steal a fixed fraction of the run
                // time (1.0 when writes are free).
                let ck_eff = self
                    .ckpt
                    .get(proc.id.0 as usize)
                    .map_or(1.0, |c| c.efficiency());
                advanced.push((proc.id, run_dt * ck_eff / (iter * slow), run_dt));
            }
            for (rid, iters, run_dt) in advanced {
                if let Some(job) = self.jobs.get_mut(rid.0 as usize) {
                    let before = job.completed_iterations;
                    job.completed_iterations += iters;
                    let after = job.completed_iterations;
                    if let Some(ck) = self.ckpt.get_mut(rid.0 as usize) {
                        ck.on_progress(run_dt, before, after);
                    }
                }
                if let Some(proc) = self.devices[d].training_mut(rid) {
                    proc.advance(iters as u64);
                }
            }
        }

        // Utilization integrators see the (constant) current state.
        let gt = &self.gt;
        self.devices[d].record_utilization(gt, now);
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, now: SimTime, job: JobId) {
        let j = &self.jobs[job.0 as usize];
        let est = self.gt.zoo().task(j.task).gpu_hours * 3600.0 * self.iter_scale;
        self.queue.push(QueueItem {
            arrival: now,
            est_duration: SimDuration::from_secs(est),
            priority: j.priority,
            class: j.class,
            payload: job,
        });
        self.try_dispatch(now);
    }

    fn on_completion(&mut self, now: SimTime, job: JobId, epoch: u64) -> bool {
        let device = match self.jobs[job.0 as usize].device {
            Some(d) => d,
            None => return false,
        };
        if self.dstate[device].epoch != epoch {
            return false; // Stale event; a reconfiguration rescheduled it.
        }
        self.accrue(now, device);
        let j = &self.jobs[job.0 as usize];
        if j.remaining_iterations() > 1.0 {
            // Progress drifted from the estimate (noise, pauses):
            // reschedule from the true remaining work.
            self.reschedule_completions(now, device);
            return false;
        }
        let rid = ResidentId(job.0);
        self.devices[device].remove_training(now, rid);
        self.jobs[job.0 as usize].finish(now);
        let est = now - self.jobs[job.0 as usize].submitted;
        self.fair
            .record(self.jobs[job.0 as usize].class, est.as_secs());
        let cap = self.applied_share_cap(now, device);
        self.devices[device].rebalance_training_fractions(cap);
        self.refresh_memory_pause(now, device);
        self.reconfigure(now, device);
        self.try_dispatch(now);
        true
    }

    fn on_qps_change(&mut self, now: SimTime, d: usize) {
        self.accrue(now, d);
        let (dwell, raw_qps) = self.dstate[d].qps_gen.next_segment();
        let burst = self.burst_multiplier(now);
        let qps = raw_qps * self.config.load_multiplier * burst;
        if !self.devices[d].is_up() {
            // The replica is down but demand keeps fluctuating. If the
            // traffic was not failed over, the drop rate follows demand;
            // if it was, survivors keep serving the frozen failover
            // share and the new demand level applies at repair.
            if self.dstate[d].rerouted.is_empty() {
                if let Some(st) = self.dstate[d].stashed_inference.as_mut() {
                    st.qps = qps;
                }
                // An active standby keeps tracking the demand it covers.
                if let Some(h) = self.dstate[d].standby_host {
                    if self.devices[h].is_up() {
                        self.accrue(now, h);
                        self.devices[h].set_standby_qps(&self.gt, now, qps);
                    }
                }
            }
            self.events.schedule_at(
                now + dwell.max(SimDuration::from_secs(0.5)),
                Event::QpsChange(d),
            );
            return;
        }
        self.devices[d].set_inference_qps(&self.gt, now, qps + self.dstate[d].extra_qps);

        // Monitor check (§5.3.2): retune when drift exceeds 50 %.
        let triggered = self.dstate[d].monitor.observe_qps(qps).is_some();
        // SLO-risk triggers (§5.3.2): tail latency near the SLO, or the
        // replica's service rate close to the arrival rate (queueing
        // pressure a real monitor would see as rising latency).
        let throttled = now.since(self.dstate[d].last_risk_tune).as_secs() <= 30.0;
        let risk = !throttled
            && (self.dstate[d]
                .last_p99
                .map(|p| p > 0.95 * self.device_slo(d))
                .unwrap_or(false)
                || self.dstate[d].last_util > 0.85
                || self.dstate[d].last_pviol > 0.02);
        if triggered || risk {
            if risk {
                self.dstate[d].last_risk_tune = now;
            }
            self.reconfigure(now, d);
        }

        // Cap the next dwell so bursts (Fig. 16) are noticed promptly.
        let mut next = dwell;
        if let Some(b) = &self.config.burst {
            if let Some(t) = b.next_change_after(now) {
                next = next.min(t - now + SimDuration::from_secs(0.1));
            }
        }
        self.events.schedule_at(
            now + next.max(SimDuration::from_secs(0.5)),
            Event::QpsChange(d),
        );
    }

    fn on_util_sample(&mut self, now: SimTime) {
        let mut sm = 0.0;
        let mut mem = 0.0;
        for dev in &self.devices {
            sm += dev.sm_utilization(&self.gt);
            mem += dev.memory().utilization();
        }
        let n = self.devices.len() as f64;
        self.util_series.push((now.as_secs(), sm / n, mem / n));
        if !self.all_done() {
            self.events.schedule_in(
                SimDuration::from_secs(self.config.util_sample_secs),
                Event::UtilSample,
            );
        }
    }

    // ------------------------------------------------------------------
    // Scheduling and configuration.
    // ------------------------------------------------------------------

    fn candidates(&self, now: SimTime) -> Vec<DeviceCandidate> {
        let max_t = self.config.system.max_trainings();
        // Reliability terms only engage under fault injection so the
        // fault-free paper-reproduction runs see exactly the flat-pool
        // scores (the prior is all-healthy and the anti-affinity term
        // zero; `MudiConfig::flat` additionally zeroes the weights).
        let reliability_on = self.config.faults.is_some();
        // Fraction of each rack already hosting training work — the
        // anti-affinity signal spreading jobs across fault domains.
        let rack_load: Vec<f64> = (0..self.topo.shape().racks)
            .map(|r| {
                let range = self.topo.devices_in_rack(r);
                if range.is_empty() {
                    return 0.0;
                }
                let busy = range
                    .clone()
                    .filter(|&d| !self.devices[d].trainings().is_empty())
                    .count();
                busy as f64 / range.len() as f64
            })
            .collect();
        let elapsed_days = (now.as_secs() / 86_400.0).max(0.25);
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, dev)| dev.is_up() && dev.trainings().len() < max_t)
            .map(|(i, dev)| {
                let service = dev.inference().expect("replica deployed").service;
                let (reliability, domain_training_load) = if reliability_on {
                    let prior = ReliabilityPrior {
                        faults_per_day: self.dstate[i].faults_seen as f64 / elapsed_days,
                        degraded: dev.perf_factor() < 1.0,
                    };
                    (prior, rack_load[self.topo.rack_of(i)])
                } else {
                    (ReliabilityPrior::default(), 0.0)
                };
                DeviceCandidate {
                    device: i,
                    service,
                    existing_tasks: dev.trainings().iter().map(|t| t.task).collect(),
                    mem_headroom_gb: (dev.memory().capacity_gb() - dev.memory().total_demand_gb())
                        .max(-20.0),
                    reliability,
                    domain_training_load,
                }
            })
            .collect()
    }

    fn try_dispatch(&mut self, now: SimTime) {
        loop {
            if self.queue.is_empty() {
                return;
            }
            let candidates = self.candidates(now);
            if candidates.is_empty() {
                return;
            }
            let Some(idx) = self.config.policy.next_index(&self.queue, &self.fair) else {
                return;
            };
            let job_id = self.queue[idx].payload;
            let task = self.jobs[job_id.0 as usize].task;

            let t0 = Instant::now();
            let placed = self
                .system
                .place(&self.gt, task, &candidates, &mut self.rng);
            self.placement_secs.push(t0.elapsed().as_secs_f64());

            let Some(device) = placed else {
                return; // Head of queue cannot be placed; wait.
            };
            self.queue.remove(idx);
            self.placement_log.push((
                task,
                device,
                candidates.iter().map(|c| (c.device, c.service)).collect(),
            ));

            self.accrue(now, device);
            let job = &self.jobs[job_id.0 as usize];
            // Requeued jobs resume from their checkpointed progress.
            let proc = TrainingProcess::with_progress(
                ResidentId(job_id.0),
                task,
                0.1,
                job.completed_iterations.max(0.0) as u64,
                job.total_iterations,
            );
            self.devices[device]
                .add_training(&self.gt, now, proc)
                .expect("candidate had a free slot");
            self.jobs[job_id.0 as usize].start(now, device);
            let cap = self.applied_share_cap(now, device);
            self.devices[device].rebalance_training_fractions(cap);
            self.refresh_memory_pause(now, device);
            self.reconfigure(now, device);
        }
    }

    /// The end-to-end P99 a latency monitor would measure on device
    /// `d`: batch P99 plus tail fill wait, inflated by queueing once
    /// utilization approaches 1 (feedback systems like GSLICE consume
    /// this signal).
    fn observed_p99(&self, d: usize) -> Option<f64> {
        let p99 = self.dstate[d].last_p99?;
        let inf = self.devices[d].inference()?;
        let fill = if inf.qps > 0.0 {
            inf.batch as f64 / inf.qps
        } else {
            0.0
        };
        let queue_factor = 1.0 + 10.0 * (self.dstate[d].last_util - 0.85).max(0.0);
        Some((p99 + fill * 5.0 / 6.0) * queue_factor)
    }

    fn device_slo(&self, d: usize) -> f64 {
        let svc = self.devices[d]
            .inference()
            .expect("replica deployed")
            .service;
        self.gt.zoo().service(svc).slo_secs()
    }

    /// Runs the system's configure step for device `d` and applies the
    /// decision: batch (free), fraction (visible downtime accounted as
    /// violated requests), training pause state, and memory effects.
    fn reconfigure(&mut self, now: SimTime, d: usize) {
        if !self.devices[d].is_up() {
            return; // Nothing to tune on a down device.
        }
        self.accrue(now, d);
        let dev = &self.devices[d];
        let inf = dev.inference().expect("replica deployed");
        let view = DeviceView {
            device: d,
            service: inf.service,
            qps: inf.qps,
            slo_secs: self.gt.zoo().service(inf.service).slo_secs(),
            tasks: dev.trainings().iter().map(|t| t.task).collect(),
            batch: inf.batch,
            fraction: inf.gpu_fraction,
            measured_p99: self.observed_p99(d),
            mem_headroom_gb: dev.memory().capacity_gb() - dev.memory().total_demand_gb(),
        };
        let qps = inf.qps;
        let old_fraction = inf.gpu_fraction;
        let mut decision: ConfigDecision = self.system.configure(&self.gt, &view, &mut self.rng);
        if decision.bo_iterations > 0 {
            self.bo_iterations.push(decision.bo_iterations);
        }
        // A standby's reserved slice is invisible to the tuner; clamp so
        // the primary plus the reserve never overcommits the device.
        let reserve = self.devices[d].standby_reserve();
        if reserve > 0.0 {
            decision.fraction = decision.fraction.min(1.0 - reserve).max(0.01);
        }

        // Apply the batch (free) and memory demand.
        self.devices[d].set_inference_batch(&self.gt, now, decision.batch);

        // Apply the fraction; a change costs visible downtime, accrued
        // as violated requests at the current QPS. Hysteresis: tiny
        // adjustments are not worth an instance hand-off — keep the old
        // partition unless the move exceeds 5 GPU-percentage points or
        // shrinks below a requirement increase.
        if (decision.fraction - old_fraction).abs() > 0.05
            || (decision.fraction > old_fraction && decision.pause_training)
        {
            self.devices[d].set_inference_fraction(decision.fraction);
            let downtime = match self.config.system {
                SystemKind::Gslice | SystemKind::Gpulets | SystemKind::MuxFlow => {
                    SimDuration::from_secs(1.0)
                }
                _ => ReconfigPolicy::ShadowInstance.visible_downtime(),
            };
            let svc = self.devices[d].inference().expect("replica").service;
            let m = self.services.entry(svc).or_default();
            let lost = qps * downtime.as_secs();
            m.requests += lost;
            m.violations += lost;
        }
        self.dstate[d].training_share_cap = decision.training_share_cap;
        // The SLO circuit-breaker sheds best-effort training share while
        // the device is post-failure degraded.
        let cap = self.applied_share_cap(now, d);
        self.devices[d].rebalance_training_fractions(cap);

        // Pause bookkeeping: SLO infeasibility (any system) or memory
        // overflow (systems without Mudi's Memory Manager). A paused
        // device re-evaluates soon — pausing is meant to be transient
        // ("until suitable resources become available", §5.3.2).
        self.dstate[d].training_paused = decision.pause_training;
        self.refresh_memory_pause(now, d);
        if self.dstate[d].training_paused {
            if self.dstate[d].paused_since.is_none() {
                self.dstate[d].paused_since = Some(now);
            }
            self.schedule_retune(d);
        } else {
            self.dstate[d].paused_since = None;
        }
        self.dstate[d].monitor.mark_tuned(qps);
        self.reschedule_completions(now, d);
    }

    /// For systems without unified-memory swapping, training cannot run
    /// while the device is overcommitted.
    fn refresh_memory_pause(&mut self, now: SimTime, d: usize) {
        if !self.config.system.manages_memory() && self.devices[d].memory().is_overflowed() {
            if !self.dstate[d].training_paused {
                self.dstate[d].training_paused = true;
                // Keep the original pause start across reconfigure's
                // transient unpause/repause so eviction can trigger.
                if self.dstate[d].paused_since.is_none() {
                    self.dstate[d].paused_since = Some(now);
                }
                // Memory pauses need their own re-evaluation heartbeat:
                // nothing else may touch this device for a long time.
                self.schedule_retune(d);
            }
        } else if !self.config.system.manages_memory() {
            // Overflow cleared: resume unless paused for SLO reasons —
            // heuristic systems only pause for memory.
            self.dstate[d].training_paused = false;
            self.dstate[d].paused_since = None;
        }
    }

    /// Schedules a single pending Retune heartbeat for `d`.
    fn schedule_retune(&mut self, d: usize) {
        if !self.dstate[d].retune_pending {
            self.dstate[d].retune_pending = true;
            self.events
                .schedule_in(SimDuration::from_secs(60.0), Event::Retune(d));
        }
    }

    /// Evicts every training resident of `d` back to the pending queue
    /// (keeping their progress), then redistributes them.
    fn evict_trainings(&mut self, now: SimTime, d: usize) {
        self.accrue(now, d);
        let ids: Vec<ResidentId> = self.devices[d].trainings().iter().map(|t| t.id).collect();
        for rid in ids {
            self.devices[d].remove_training(now, rid);
            let job = &mut self.jobs[rid.0 as usize];
            job.state = JobState::Queued;
            job.device = None;
            let est = self.gt.zoo().task(job.task).gpu_hours * 3600.0 * self.iter_scale;
            let item = QueueItem {
                arrival: job.submitted,
                est_duration: SimDuration::from_secs(est),
                priority: job.priority,
                class: job.class,
                payload: JobId(rid.0),
            };
            self.queue.push(item);
        }
        self.dstate[d].training_paused = false;
        self.dstate[d].paused_since = None;
        self.dstate[d].epoch += 1; // Invalidate stale completions.
        self.try_dispatch(now);
    }

    /// Re-derives completion events for every training resident on `d`
    /// from its current progress and rate; bumps the epoch so stale
    /// events are ignored.
    fn reschedule_completions(&mut self, now: SimTime, d: usize) {
        self.dstate[d].epoch += 1;
        let epoch = self.dstate[d].epoch;
        if self.dstate[d].training_paused {
            return; // No completion while paused; resume reschedules.
        }
        let dev = &self.devices[d];
        let pf = dev.perf_factor();
        if pf <= 0.0 {
            return; // Down: completions resume at repair.
        }
        let mut to_schedule = Vec::new();
        for proc in dev.trainings() {
            let job = &self.jobs[proc.id.0 as usize];
            let view = dev.colo_for_training(proc.id);
            let eff = (proc.gpu_fraction * pf).max(1e-3);
            let iter = self.gt.training_iteration(proc.task, eff, &view);
            let slow = dev.memory().training_slowdown(proc.id);
            let ck_eff = self
                .ckpt
                .get(proc.id.0 as usize)
                .map_or(1.0, |c| c.efficiency());
            let mut remaining = job.remaining_iterations() * iter * slow / ck_eff;
            // A restarting process only resumes once its restart ends.
            if let Some(&(_, until)) = self.dstate[d]
                .restarting
                .iter()
                .find(|(id, _)| *id == proc.id)
            {
                remaining += until.since(now).as_secs().max(0.0);
            }
            to_schedule.push((proc.id, remaining.max(1e-3)));
        }
        for (rid, secs) in to_schedule {
            self.events.schedule_at(
                now + SimDuration::from_secs(secs),
                Event::JobCompletion {
                    job: JobId(rid.0),
                    epoch,
                },
            );
        }
    }

    fn all_done(&self) -> bool {
        !self.jobs.is_empty() && self.jobs.iter().all(|j| j.state == JobState::Completed)
    }

    // ------------------------------------------------------------------
    // Fault injection and recovery.
    // ------------------------------------------------------------------

    fn burst_multiplier(&self, now: SimTime) -> f64 {
        self.config
            .burst
            .as_ref()
            .map_or(1.0, |b| b.multiplier_at(now))
    }

    /// The training share cap actually applied: the system's decision,
    /// shed by the circuit-breaker while the device is degraded.
    fn applied_share_cap(&self, now: SimTime, d: usize) -> f64 {
        let st = &self.dstate[d];
        (st.training_share_cap * st.breaker.share_multiplier(now)).clamp(0.01, 1.0)
    }

    /// A fault-triggered retune, gated by the anti-thrashing guard: a
    /// burst of faults on one device retunes at most once per dwell,
    /// and not at all during an explicit cooldown. Load-driven retunes
    /// (Monitor drift, SLO risk) are not gated — only fault reactions.
    fn reconfigure_guarded(&mut self, now: SimTime, d: usize) {
        if !self.devices[d].is_up() {
            return;
        }
        if self.dstate[d].guard.allows(now) {
            self.dstate[d].guard.record(now);
            self.reconfigure(now, d);
        }
    }

    fn on_fault(&mut self, now: SimTime, idx: usize) {
        let ev = self.fault_schedule.events()[idx];
        // Every observed fault — any class — feeds the device's
        // reliability prior.
        self.dstate[ev.device].faults_seen += 1;
        match ev.kind {
            FaultKind::DeviceFailure { repair } => {
                self.on_device_failure(now, ev.device, repair, ev.domain)
            }
            FaultKind::Slowdown { factor, duration } => {
                self.on_slowdown(now, ev.device, factor, duration)
            }
            FaultKind::ProcessCrash { salt } => self.on_process_crash(now, ev.device, salt),
            FaultKind::MpsRestartFailure => self.on_mps_failure(now, ev.device),
        }
    }

    /// Hard device failure: the replica and every training process are
    /// evicted, memory state is lost, and the device stays down until
    /// `repair` later. Inference fails over to surviving same-service
    /// replicas (or its traffic drops, every request a violation);
    /// training rolls back to its last checkpoint and either requeues
    /// through the system's placement logic or waits for repair.
    fn on_device_failure(
        &mut self,
        now: SimTime,
        d: usize,
        repair: SimDuration,
        domain: FaultDomain,
    ) {
        if !self.devices[d].is_up() {
            return; // Already down (schedules never overlap, but be safe).
        }
        self.accrue(now, d);
        self.fmetrics.device_failures += 1;
        self.fmetrics.device_down_secs += repair.as_secs();

        let (inf, procs) = self.devices[d].fail(now);
        let inf = inf.expect("replica deployed");
        // Split the replica's demand into its own (`base`) and carried
        // failover traffic; only the base fails over onward — carried
        // shares stay ledgered to their origin devices and drop here.
        let base = (inf.qps - self.dstate[d].extra_qps).max(0.0);
        let mut stash = inf;
        stash.qps = base;
        self.dstate[d].stashed_inference = Some(stash);

        if self.recovery.standby.is_enabled() {
            // A standby hosted on `d` dies with it: any device it was
            // covering loses coverage (its traffic drops until repair,
            // and the service may now be in total outage).
            for f in 0..self.dstate.len() {
                if self.dstate[f].standby_host == Some(d) {
                    self.dstate[f].standby_host = None;
                    let fsvc = self.dstate[f].service;
                    let up = (0..self.devices.len())
                        .filter(|&s| self.devices[s].is_up() && self.dstate[s].service == fsvc)
                        .count();
                    if up == 0 {
                        self.fmetrics.service_outages += 1;
                        if domain.is_correlated() {
                            self.fmetrics.correlated_outages += 1;
                        }
                        self.outage_start.entry(fsvc).or_insert(now);
                    }
                }
            }
            // Cancel any promotion this device was about to perform.
            if self.dstate[d].pending_promote.take().is_some() {
                self.dstate[d].promote_token += 1;
            }
        }

        let mut standby_covered = false;
        if self.recovery.failover_inference && base > 0.0 {
            let survivors: Vec<usize> = (0..self.devices.len())
                .filter(|&s| {
                    s != d
                        && self.devices[s].is_up()
                        && self.dstate[s].service == self.dstate[d].service
                })
                .collect();
            if !survivors.is_empty() {
                self.fmetrics.inference_failovers += 1;
                let share = base / survivors.len() as f64;
                for &s in &survivors {
                    self.accrue(now, s);
                    self.dstate[s].extra_qps += share;
                    let cur = self.devices[s].inference().expect("up replica").qps;
                    self.devices[s].set_inference_qps(&self.gt, now, cur + share);
                    self.dstate[d].rerouted.push((s, share));
                    self.reconfigure_guarded(now, s);
                }
                // Rerouting is immediate in the model: survivors absorb
                // the load within the same instant.
                self.fmetrics.failover_latency_secs.push(0.0);
            } else {
                // No survivor left — the blast swallowed every replica.
                // The warm-standby pool is the last line of defense: an
                // idle standby for this service on another up device is
                // promoted after a bounded switch latency instead of
                // dropping every request until repair.
                if self.recovery.standby.is_enabled() {
                    let svc = self.dstate[d].service;
                    let host = (0..self.devices.len()).find(|&h| {
                        h != d
                            && self.devices[h].is_up()
                            && self.dstate[h].pending_promote.is_none()
                            && self.devices[h]
                                .standby()
                                .is_some_and(|s| s.service == svc && !s.is_active())
                    });
                    if let Some(h) = host {
                        self.dstate[h].promote_token += 1;
                        let token = self.dstate[h].promote_token;
                        self.dstate[h].pending_promote = Some((d, token));
                        let promote_secs = if self.devices[h].standby().expect("standby").preloaded
                        {
                            SHADOW_SWITCH_SECS
                        } else {
                            MPS_RESTART_SECS
                        };
                        self.events.schedule_at(
                            now + SimDuration::from_secs(promote_secs),
                            Event::StandbyPromote { host: h, token },
                        );
                        self.fmetrics.failover_latency_secs.push(promote_secs);
                        self.fmetrics.inference_failovers += 1;
                        standby_covered = true;
                    }
                }
                if !standby_covered {
                    // Nobody can take the load: dropped until repair.
                    self.fmetrics.failover_latency_secs.push(repair.as_secs());
                }
            }
        } else if base > 0.0 {
            // Failover disabled: traffic drops for the whole outage.
            self.fmetrics.failover_latency_secs.push(repair.as_secs());
        }

        // Total-outage accounting: if this failure took down the
        // service's last live replica (e.g. every survivor sat inside
        // the same blast radius), open an outage window. The dropped
        // traffic itself is charged per-span by `accrue`; this makes
        // the outage *explicit* rather than silently folded into
        // violations.
        let svc = self.dstate[d].service;
        let up_replicas = (0..self.devices.len())
            .filter(|&s| self.devices[s].is_up() && self.dstate[s].service == svc)
            .count();
        // A pending or already-active standby keeps the service alive:
        // no replica is up, but traffic resumes within the bounded
        // promote window rather than waiting for repair.
        let standby_cover = standby_covered
            || (0..self.devices.len()).any(|h| {
                self.devices[h].is_up()
                    && self.devices[h]
                        .standby()
                        .is_some_and(|s| s.service == svc && s.is_active())
            });
        if up_replicas == 0 && !standby_cover {
            self.fmetrics.service_outages += 1;
            if domain.is_correlated() {
                self.fmetrics.correlated_outages += 1;
            }
            self.outage_start.entry(svc).or_insert(now);
        }

        // Training: roll back to the checkpoint, then requeue (the
        // scheduler re-places through the system's DeviceSelector) or
        // strand until repair.
        for proc in procs {
            let ji = proc.id.0 as usize;
            let ck = self.ckpt[ji].rollback();
            let lost = (self.jobs[ji].completed_iterations - ck).max(0.0);
            self.fmetrics.lost_iterations += lost;
            self.jobs[ji].rollback_to(ck);
            if self.recovery.requeue_training {
                self.fmetrics.training_evictions += 1;
                let job = &mut self.jobs[ji];
                job.state = JobState::Queued;
                job.device = None;
                let est = self.gt.zoo().task(job.task).gpu_hours * 3600.0 * self.iter_scale;
                self.queue.push(QueueItem {
                    arrival: job.submitted,
                    est_duration: SimDuration::from_secs(est),
                    priority: job.priority,
                    class: job.class,
                    payload: JobId(proc.id.0),
                });
            } else {
                self.jobs[ji].state = JobState::Queued;
                self.dstate[d].stranded.push(JobId(proc.id.0));
            }
        }

        self.dstate[d].restarting.clear();
        self.dstate[d].training_paused = false;
        self.dstate[d].paused_since = None;
        self.dstate[d].epoch += 1; // Invalidate in-flight completions.
        self.dstate[d].guard.cooldown(now, repair);
        self.events
            .schedule_at(now + repair, Event::DeviceRepair(d));
        if self.recovery.requeue_training {
            self.try_dispatch(now);
        }
    }

    /// Repair: redeploy the replica at the current demand level, return
    /// failover traffic to this device, restore stranded jobs from
    /// their checkpoints, and enter a degraded burn-in window with the
    /// circuit-breaker shedding training share.
    fn on_device_repair(&mut self, now: SimTime, d: usize) {
        self.accrue(now, d); // Final span of the outage (drop accounting).
        self.devices[d].repair();

        // This repair brings the service's replica count back above
        // zero; close any open total-outage window.
        if let Some(start) = self.outage_start.remove(&self.dstate[d].service) {
            self.fmetrics.service_outage_secs += now.since(start).as_secs();
        }

        // Release warm-standby coverage: the covering standby drains
        // back to idle and waits for the next failure.
        if let Some(h) = self.dstate[d].standby_host.take() {
            if self.devices[h].is_up() {
                self.accrue(now, h);
                self.devices[h].demote_standby(&self.gt, now);
                self.fmetrics.standby_reseeds += 1;
                self.reconfigure_guarded(now, h);
            }
        }
        // Cancel any promotion still pending on this device's behalf.
        for h in 0..self.dstate.len() {
            if matches!(self.dstate[h].pending_promote, Some((t, _)) if t == d) {
                self.dstate[h].pending_promote = None;
                self.dstate[h].promote_token += 1;
            }
        }

        // Undo the failover: survivors stop serving this replica's share.
        let rerouted = std::mem::take(&mut self.dstate[d].rerouted);
        for (s, share) in rerouted {
            self.dstate[s].extra_qps = (self.dstate[s].extra_qps - share).max(0.0);
            if self.devices[s].is_up() {
                self.accrue(now, s);
                let cur = self.devices[s].inference().expect("up replica").qps;
                self.devices[s].set_inference_qps(&self.gt, now, (cur - share).max(0.0));
                self.reconfigure_guarded(now, s);
            }
        }

        // Redeploy at the demand the generator currently calls for.
        let mut inst = self.dstate[d]
            .stashed_inference
            .take()
            .expect("replica stashed at failure");
        let base = self.dstate[d].qps_gen.current()
            * self.config.load_multiplier
            * self.burst_multiplier(now);
        inst.qps = base + self.dstate[d].extra_qps;
        self.devices[d].deploy_inference(&self.gt, now, inst);

        // Re-seed the pool: a repaired device that held a standby slot
        // rejoins with a fresh idle standby.
        let sb = self.recovery.standby;
        if sb.is_enabled() {
            if let Some(svc) = self.dstate[d].standby_slot {
                if self.devices[d].standby().is_none() {
                    self.devices[d].seed_standby(
                        &self.gt,
                        now,
                        StandbyInstance::new(svc, 16, sb.reserve_fraction, sb.preloaded_weights),
                    );
                    self.fmetrics.standby_reseeds += 1;
                }
            }
        }

        // Stranded jobs resume in place from their checkpoints.
        let stranded = std::mem::take(&mut self.dstate[d].stranded);
        for job_id in stranded {
            let ji = job_id.0 as usize;
            let job = &mut self.jobs[ji];
            job.state = JobState::Running;
            job.device = Some(d);
            let proc = TrainingProcess::with_progress(
                ResidentId(job_id.0),
                job.task,
                0.1,
                job.completed_iterations.max(0.0) as u64,
                job.total_iterations,
            );
            self.devices[d]
                .add_training(&self.gt, now, proc)
                .expect("repaired device has free slots");
        }
        if !self.devices[d].trainings().is_empty() {
            let cap = self.applied_share_cap(now, d);
            self.devices[d].rebalance_training_fractions(cap);
        }

        // Post-repair burn-in: degraded clocks + training share shed.
        self.devices[d].set_degraded(POST_REPAIR_FACTOR);
        self.dstate[d].degrade_token += 1;
        let token = self.dstate[d].degrade_token;
        self.events.schedule_at(
            now + self.recovery.degraded_hold,
            Event::SlowdownEnd { device: d, token },
        );
        self.dstate[d]
            .breaker
            .trip(now, self.recovery.degraded_hold);

        self.refresh_memory_pause(now, d);
        self.reconfigure(now, d);
        self.try_dispatch(now);
    }

    /// A scheduled standby promotion fires. If still valid (the token
    /// matches, the host is up, the covered device is still down), the
    /// standby starts serving the failed replica's base traffic on its
    /// reserved slice; otherwise the event is a stale no-op.
    fn on_standby_promote(&mut self, now: SimTime, host: usize, token: u64) {
        if self.dstate[host].promote_token != token {
            return; // Cancelled or superseded.
        }
        let Some((target, t)) = self.dstate[host].pending_promote.take() else {
            return;
        };
        debug_assert_eq!(t, token);
        if !self.devices[host].is_up() || self.devices[target].is_up() {
            return; // Host died meanwhile, or the target already repaired.
        }
        let qps = self.dstate[target]
            .stashed_inference
            .as_ref()
            .map_or(0.0, |i| i.qps);
        if qps <= 0.0 {
            return; // Demand vanished during the promote window.
        }
        // Book the drop span on the target up to the promote instant,
        // then hand its traffic to the standby.
        self.accrue(now, target);
        self.accrue(now, host);
        self.devices[host].promote_standby(&self.gt, now, qps);
        self.dstate[target].standby_host = Some(host);
        self.fmetrics.standby_promotions += 1;
        self.reconfigure_guarded(now, host);
    }

    /// Transient slowdown: the device keeps running at `factor` of its
    /// effective compute for `duration`; the breaker sheds training
    /// share and a (guarded) retune lets the system adapt its batch.
    fn on_slowdown(&mut self, now: SimTime, d: usize, factor: f64, duration: SimDuration) {
        if !self.devices[d].is_up() {
            return;
        }
        self.accrue(now, d);
        self.fmetrics.slowdowns += 1;
        self.devices[d].set_degraded(factor.clamp(0.05, 1.0));
        self.dstate[d].degrade_token += 1;
        let token = self.dstate[d].degrade_token;
        self.events
            .schedule_at(now + duration, Event::SlowdownEnd { device: d, token });
        self.dstate[d].breaker.trip(now, duration);
        self.reconfigure_guarded(now, d);
        self.reschedule_completions(now, d);
    }

    fn on_slowdown_end(&mut self, now: SimTime, d: usize, token: u64) {
        if self.dstate[d].degrade_token != token || !self.devices[d].is_up() {
            return; // Superseded by a newer window or a failure.
        }
        self.accrue(now, d);
        self.devices[d].clear_degraded();
        self.reconfigure_guarded(now, d);
        self.reschedule_completions(now, d);
    }

    /// One training process dies and restarts from its checkpoint:
    /// rolled-back work is lost and the process sits out the restart.
    fn on_process_crash(&mut self, now: SimTime, d: usize, salt: u64) {
        if !self.devices[d].is_up() || self.devices[d].trainings().is_empty() {
            return;
        }
        self.accrue(now, d);
        self.fmetrics.process_crashes += 1;
        let n = self.devices[d].trainings().len();
        let victim = self.devices[d].trainings()[salt as usize % n].id;
        let ji = victim.0 as usize;
        let ck = self.ckpt[ji].rollback();
        let lost = (self.jobs[ji].completed_iterations - ck).max(0.0);
        self.fmetrics.lost_iterations += lost;
        self.jobs[ji].rollback_to(ck);
        if let Some(proc) = self.devices[d].training_mut(victim) {
            proc.completed_iterations = ck.max(0.0) as u64;
        }
        let restart = self.recovery.process_restart;
        self.fmetrics.restart_downtime_secs += restart.as_secs();
        let until = now + restart;
        self.dstate[d].restarting.retain(|&(id, _)| id != victim);
        self.dstate[d].restarting.push((victim, until));
        self.events.schedule_at(
            until,
            Event::ProcessRestart {
                device: d,
                job: JobId(victim.0),
            },
        );
        self.reschedule_completions(now, d);
    }

    fn on_process_restart(&mut self, now: SimTime, d: usize, job: JobId) {
        let before = self.dstate[d].restarting.len();
        self.dstate[d]
            .restarting
            .retain(|&(id, until)| id.0 != job.0 || until > now);
        if before == self.dstate[d].restarting.len() {
            return; // Entry superseded (e.g. the device failed meanwhile).
        }
        if self.devices[d].is_up() {
            self.accrue(now, d);
            self.reschedule_completions(now, d);
        }
    }

    /// MPS daemon failure: every process on the device takes a cold
    /// restart. No training work is lost (the processes were healthy),
    /// but inference is down for the restart — every request in the
    /// window violates — and training sits out the outage.
    fn on_mps_failure(&mut self, now: SimTime, d: usize) {
        if !self.devices[d].is_up() {
            return;
        }
        self.accrue(now, d);
        self.fmetrics.mps_failures += 1;
        let q = self.devices[d].inference().expect("up replica").qps;
        let lost = q * MPS_RESTART_SECS;
        let m = self.services.entry(self.dstate[d].service).or_default();
        m.requests += lost;
        m.violations += lost;
        self.fmetrics.dropped_requests += lost;

        let restart = SimDuration::from_secs(MPS_RESTART_SECS);
        let until = now + restart;
        let ids: Vec<ResidentId> = self.devices[d].trainings().iter().map(|t| t.id).collect();
        for id in ids {
            self.fmetrics.restart_downtime_secs += MPS_RESTART_SECS;
            self.dstate[d].restarting.retain(|&(i, _)| i != id);
            self.dstate[d].restarting.push((id, until));
            self.events.schedule_at(
                until,
                Event::ProcessRestart {
                    device: d,
                    job: JobId(id.0),
                },
            );
        }
        self.dstate[d].guard.cooldown(now, restart);
        self.reschedule_completions(now, d);
    }

    // ------------------------------------------------------------------
    // Results.
    // ------------------------------------------------------------------

    /// Closes total-outage windows still open at end-of-run. Drained in
    /// sorted order: `HashMap` iteration order is unspecified and float
    /// addition is order-sensitive, which would break bit-identical
    /// replay.
    fn close_open_outages(&mut self, end: SimTime) {
        let mut open: Vec<(ServiceId, SimTime)> = self.outage_start.drain().collect();
        open.sort_by_key(|&(s, _)| s);
        for (_, start) in open {
            self.fmetrics.service_outage_secs += end.since(start).as_secs();
        }
    }

    fn build_result(&mut self, last_finish: SimTime, wall: f64) -> ExperimentResult {
        let mut result = ExperimentResult {
            system: self.config.system.name().to_string(),
            services: std::mem::take(&mut self.services),
            ..Default::default()
        };
        let first_submit = self
            .jobs
            .iter()
            .map(|j| j.submitted)
            .min()
            .unwrap_or(SimTime::ZERO);
        result.makespan_secs = last_finish.since(first_submit).as_secs();
        for j in &self.jobs {
            if let Some(ct) = j.completion_time() {
                result.ct.record(ct.as_secs());
                result.jobs_completed += 1;
            }
            if let Some(w) = j.waiting_time() {
                result.waiting.record(w.as_secs());
            }
        }
        result.jobs_submitted = self.jobs.len();
        // Goodput counts only retained progress; work rolled back to a
        // checkpoint was subtracted from `completed_iterations` and
        // shows up in `faults.lost_iterations` instead.
        result.useful_iterations = self.jobs.iter().map(|j| j.completed_iterations).sum();
        for ck in &self.ckpt {
            self.fmetrics.checkpoint_writes += ck.checkpoints_taken();
            self.fmetrics.checkpoint_write_secs += ck.write_time_spent();
        }
        result.faults = std::mem::take(&mut self.fmetrics);

        let n = self.devices.len() as f64;
        result.mean_sm_util = self
            .devices
            .iter()
            .map(GpuDevice::mean_sm_utilization)
            .sum::<f64>()
            / n;
        result.mean_mem_util = self
            .devices
            .iter()
            .map(GpuDevice::mean_mem_utilization)
            .sum::<f64>()
            / n;
        result.util_series = std::mem::take(&mut self.util_series);

        // Swap accounting per service (Tab. 4).
        let mut frac_by_service: HashMap<ServiceId, (f64, usize)> = HashMap::new();
        let mut transfer_sum = 0.0;
        let mut transfer_events = 0u64;
        for (i, dev) in self.devices.iter().enumerate() {
            // A device can finish the run mid-outage with no replica
            // deployed; its service binding lives in the engine state.
            let svc = self.dstate[i].service;
            let e = frac_by_service.entry(svc).or_insert((0.0, 0));
            e.0 += dev.memory().overflow_time_fraction();
            e.1 += 1;
            let s = dev.memory().stats();
            transfer_sum += s.total_transfer_secs;
            transfer_events += s.swap_in_events + s.swap_out_events;
        }
        result.swap_time_fraction = frac_by_service
            .into_iter()
            .map(|(s, (sum, n))| (s, sum / n as f64))
            .collect();
        result.mean_swap_transfer_secs = if transfer_events == 0 {
            0.0
        } else {
            transfer_sum / transfer_events as f64
        };

        result.overhead.bo_iterations = std::mem::take(&mut self.bo_iterations);
        result.overhead.placement_secs = std::mem::take(&mut self.placement_secs);
        result.wall_clock_secs = wall;
        result
    }
}

/// Per-request SLO-violation probability under a constant
/// configuration.
///
/// A request waits `u · b/W` for its batch to fill (`u` its position)
/// and then experiences the log-normal batch latency `L · ε`. The
/// probability is averaged over three batch positions; an unstable
/// service (`L ≥ b/W`, batches finishing slower than they form) is
/// driven toward certain violation.
pub fn violation_probability(qps: f64, batch: u32, slo: f64, mean: f64, sigma: f64) -> f64 {
    if qps <= 0.0 {
        return 0.0;
    }
    let fill = batch as f64 / qps;
    let mut p = 0.0;
    for u in [1.0 / 6.0, 0.5, 5.0 / 6.0] {
        let budget = slo - u * fill;
        p += if budget <= 0.0 {
            1.0
        } else {
            let z = (budget / mean).ln() / sigma.max(1e-6);
            1.0 - normal_cdf(z)
        };
    }
    let mut p = p / 3.0;
    // Stability: sustained utilization near or above 1 grows the queue
    // and eventually violates every request; the penalty ramps from
    // 95 % utilization (transient queueing absorbs brief overloads).
    let util = mean / fill;
    if util > 0.95 {
        p = p.max(((util - 0.95) * 2.5).min(1.0));
    }
    p.clamp(0.0, 1.0)
}

/// Assigns one inference service per device so that a service's
/// replicas land in as many different fault domains as possible
/// (deploy-time anti-affinity). Greedy and deterministic: devices are
/// visited in index order and each takes the service with the fewest
/// replicas on its own node, breaking ties by fewest replicas in its
/// rack, then fewest overall, then by service index. Striping at node
/// granularity (not just rack) keeps two replicas of the same service
/// off one node whenever the rack has room — a node-level blast then
/// takes at most one replica per service. Totals stay as balanced as
/// the flat `d % n` layout (each service gets `devices / n` ± 1
/// replicas), and a single-node topology degenerates to the flat
/// layout.
pub fn striped_service_assignment(
    topo: &Topology,
    devices: usize,
    n_services: usize,
) -> Vec<usize> {
    assert!(n_services > 0, "need at least one service");
    let mut in_node = vec![vec![0usize; n_services]; topo.shape().nodes()];
    let mut in_rack = vec![vec![0usize; n_services]; topo.shape().racks];
    let mut total = vec![0usize; n_services];
    let mut out = Vec::with_capacity(devices);
    for d in 0..devices {
        let node = topo.node_of(d);
        let r = topo.rack_of(d);
        let best = (0..n_services)
            .min_by_key(|&s| (in_node[node][s], in_rack[r][s], total[s], s))
            .expect("non-empty service list");
        in_node[node][best] += 1;
        in_rack[r][best] += 1;
        total[best] += 1;
        out.push(best);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_probability_shapes() {
        // Comfortable: tiny latency, loose SLO.
        let low = violation_probability(200.0, 16, 0.150, 0.010, 0.08);
        assert!(low < 0.01, "low {low}");
        // Budget blown by the fill wait alone.
        let high = violation_probability(10.0, 512, 0.150, 0.010, 0.08);
        assert!(high > 0.99, "high {high}");
        // Unstable service.
        let unstable = violation_probability(1000.0, 16, 0.5, 0.10, 0.05);
        assert!(unstable > 0.5, "unstable {unstable}");
        // No load, no violations.
        assert_eq!(violation_probability(0.0, 16, 0.1, 0.01, 0.05), 0.0);
    }

    #[test]
    fn violation_probability_monotone_in_latency() {
        let mut last = 0.0;
        for mean in [0.01, 0.03, 0.06, 0.1, 0.2] {
            let p = violation_probability(200.0, 16, 0.150, mean, 0.08);
            assert!(p >= last, "p {p} at mean {mean}");
            last = p;
        }
    }

    #[test]
    fn tiny_random_cluster_completes_all_jobs() {
        let engine = ClusterEngine::new(ClusterConfig::tiny(SystemKind::Random, 1));
        let result = engine.run_scaled(0.002);
        assert_eq!(result.jobs_completed, result.jobs_submitted);
        assert!(result.makespan_secs > 0.0);
        assert!(result.ct.count() > 0);
        assert!(result.overall_violation_rate() <= 1.0);
        assert!(result.mean_sm_util > 0.0);
    }

    #[test]
    fn tiny_gslice_cluster_completes() {
        let engine = ClusterEngine::new(ClusterConfig::tiny(SystemKind::Gslice, 2));
        let result = engine.run_scaled(0.002);
        assert_eq!(result.jobs_completed, result.jobs_submitted);
        assert!(result.mean_ct_hours() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ClusterEngine::new(ClusterConfig::tiny(SystemKind::Random, 7)).run_scaled(0.002);
        let b = ClusterEngine::new(ClusterConfig::tiny(SystemKind::Random, 7)).run_scaled(0.002);
        assert_eq!(a.jobs_completed, b.jobs_completed);
        assert!((a.makespan_secs - b.makespan_secs).abs() < 1e-6);
        assert!((a.overall_violation_rate() - b.overall_violation_rate()).abs() < 1e-12);
    }

    #[test]
    fn waiting_time_appears_under_contention() {
        // Many jobs on few devices must queue.
        let mut cfg = ClusterConfig::tiny(SystemKind::Random, 3);
        cfg.devices = 2;
        cfg.jobs = 12;
        let result = ClusterEngine::new(cfg).run_scaled(0.002);
        assert_eq!(result.jobs_completed, 12);
        assert!(
            result.waiting.max().unwrap_or(0.0) > 0.0,
            "someone should wait"
        );
    }

    #[test]
    fn faulty_run_is_deterministic() {
        let run = || {
            let cfg =
                ClusterConfig::tiny(SystemKind::Random, 17).with_faults(FaultProfile::scaled(50.0));
            ClusterEngine::new(cfg).run_scaled(0.002)
        };
        let a = run();
        let b = run();
        assert!(
            a.faults.total_faults() > 0,
            "fault rate should inject faults"
        );
        assert_eq!(a.faults.device_failures, b.faults.device_failures);
        assert_eq!(a.faults.slowdowns, b.faults.slowdowns);
        assert_eq!(a.faults.process_crashes, b.faults.process_crashes);
        assert_eq!(a.faults.mps_failures, b.faults.mps_failures);
        assert!((a.faults.lost_iterations - b.faults.lost_iterations).abs() < 1e-9);
        assert!((a.faults.dropped_requests - b.faults.dropped_requests).abs() < 1e-9);
        assert!((a.faults.rerouted_requests - b.faults.rerouted_requests).abs() < 1e-9);
        assert!((a.useful_iterations - b.useful_iterations).abs() < 1e-9);
        assert!((a.makespan_secs - b.makespan_secs).abs() < 1e-6);
        assert!((a.overall_violation_rate() - b.overall_violation_rate()).abs() < 1e-12);
    }

    #[test]
    fn jobs_complete_under_faults() {
        let cfg = ClusterConfig::tiny(SystemKind::Mudi, 23).with_faults(FaultProfile::scaled(25.0));
        let result = ClusterEngine::new(cfg).run_scaled(0.002);
        assert_eq!(result.jobs_completed, result.jobs_submitted);
        assert!(result.useful_iterations > 0.0);
        // Goodput only counts retained progress.
        let lost: f64 = result.faults.lost_iterations;
        assert!(lost >= 0.0);
    }

    /// Injects exactly one device failure and checks the conservation
    /// law the issue demands: a failed replica's traffic is either
    /// fully rerouted to survivors or counted as SLO violations —
    /// never silently dropped.
    fn one_failure_run(failover: bool) -> ExperimentResult {
        use resilience::{FaultEvent, RecoveryPolicy};
        // Enough devices that device 0's service has a same-service
        // survivor (services round-robin across the zoo).
        let n_services = Zoo::standard().services().len();
        let mut cfg = ClusterConfig::tiny(SystemKind::Random, 31);
        cfg.devices = n_services + 2;
        let mut engine = ClusterEngine::new(cfg);
        let schedule = FaultSchedule::from_events(vec![FaultEvent::device_local(
            SimTime::from_secs(600.0),
            0,
            FaultKind::DeviceFailure {
                repair: SimDuration::from_mins(30.0),
            },
        )]);
        engine.set_fault_schedule(schedule);
        engine.set_recovery_policy(RecoveryPolicy {
            failover_inference: failover,
            ..RecoveryPolicy::standard()
        });
        engine.run_scaled(0.002)
    }

    #[test]
    fn failed_replica_traffic_reroutes_to_survivors() {
        let r = one_failure_run(true);
        assert_eq!(r.faults.device_failures, 1);
        assert_eq!(r.faults.inference_failovers, 1);
        assert!(
            r.faults.rerouted_requests > 0.0,
            "survivors should serve the share"
        );
        assert_eq!(
            r.faults.dropped_requests, 0.0,
            "failover leaves nothing dropped"
        );
    }

    #[test]
    fn failed_replica_traffic_without_failover_counts_as_violations() {
        let r = one_failure_run(false);
        assert_eq!(r.faults.device_failures, 1);
        assert_eq!(r.faults.inference_failovers, 0);
        assert_eq!(r.faults.rerouted_requests, 0.0);
        assert!(
            r.faults.dropped_requests > 0.0,
            "dropped traffic must be visible"
        );
        // Every dropped request was booked as a violation too.
        let total_viol: f64 = r.services.values().map(|m| m.violations).sum();
        assert!(
            total_viol + 1e-9 >= r.faults.dropped_requests,
            "violations {total_viol} must cover dropped {}",
            r.faults.dropped_requests
        );
    }

    #[test]
    fn crash_rollback_loses_at_most_one_checkpoint_period() {
        use resilience::{FaultEvent, RecoveryPolicy};
        // One crash, long after training started; with a short period
        // the rolled-back work is bounded by period / iteration time.
        let mut cfg = ClusterConfig::tiny(SystemKind::Random, 41);
        cfg.jobs = 6;
        let mut engine = ClusterEngine::new(cfg);
        engine.set_fault_schedule(FaultSchedule::from_events(vec![FaultEvent::device_local(
            SimTime::from_secs(900.0),
            0,
            FaultKind::ProcessCrash { salt: 0 },
        )]));
        let period = SimDuration::from_secs(120.0);
        engine.set_recovery_policy(RecoveryPolicy::with_checkpoint_period(period));
        let r = engine.run_scaled(0.002);
        if r.faults.process_crashes == 0 {
            return; // Device 0 had no resident at fire time; nothing to check.
        }
        // The victim redid `lost_iterations`; at worst it lost one full
        // period of progress. Iteration times in the zoo exceed 10 ms,
        // so one period of running time bounds the lost iterations.
        assert!(r.faults.lost_iterations <= period.as_secs() / 0.010 + 1e-6);
        assert!(r.faults.restart_downtime_secs > 0.0);
    }

    #[test]
    fn striped_layout_spreads_replicas_across_racks() {
        let topo = Topology::new(TopologyShape::new(4, 2), 12);
        let svc = striped_service_assignment(&topo, 12, 6);
        for s in 0..6 {
            let replicas: Vec<usize> = (0..12).filter(|&d| svc[d] == s).collect();
            assert_eq!(replicas.len(), 2, "service {s} should keep 2 replicas");
            assert_ne!(
                topo.rack_of(replicas[0]),
                topo.rack_of(replicas[1]),
                "service {s} replicas {replicas:?} share a rack"
            );
        }
    }

    #[test]
    fn single_rack_striping_degenerates_to_flat() {
        let topo = Topology::new(TopologyShape::new(1, 1), 10);
        let svc = striped_service_assignment(&topo, 10, 6);
        let flat: Vec<usize> = (0..10).map(|d| d % 6).collect();
        assert_eq!(svc, flat);
    }

    /// The PR 3 assignment keyed on racks alone. At large device counts
    /// (more devices per node than services) it parks two replicas of
    /// one service on a single node inside a rack — the collision the
    /// node-granularity key bounds. Kept inline as the regression
    /// baseline.
    fn rack_only_assignment(topo: &Topology, devices: usize, n_services: usize) -> Vec<usize> {
        let mut in_rack = vec![vec![0usize; n_services]; topo.shape().racks];
        let mut total = vec![0usize; n_services];
        let mut out = Vec::with_capacity(devices);
        for d in 0..devices {
            let r = topo.rack_of(d);
            let best = (0..n_services)
                .min_by_key(|&s| (in_rack[r][s], total[s], s))
                .expect("non-empty service list");
            in_rack[r][best] += 1;
            total[best] += 1;
            out.push(best);
        }
        out
    }

    #[test]
    fn node_striping_regression_bounds_same_node_collisions() {
        // Reproduce the old collision: 64 devices over 4x2 means 8
        // devices per node with only 6 services — the rack-only key
        // doubles some service up on a node.
        let topo = Topology::new(TopologyShape::new(4, 2), 64);
        let old = rack_only_assignment(&topo, 64, 6);
        let count = |assign: &[usize], node: usize, s: usize| {
            (0..64)
                .filter(|&d| topo.node_of(d) == node && assign[d] == s)
                .count()
        };
        let collided = (0..topo.shape().nodes()).any(|n| (0..6).any(|s| count(&old, n, s) >= 2));
        assert!(
            collided,
            "the rack-only layout should exhibit the collision"
        );

        // The node-granularity key pins the regression: per node, no
        // service ever exceeds the pigeonhole optimum
        // ceil(node devices / services), across a sweep of shapes.
        for (racks, npr, devices, n_services) in [
            (4, 2, 64, 6),
            (4, 2, 12, 6),
            (2, 2, 40, 3),
            (8, 4, 256, 6),
            (3, 3, 100, 7),
            (2, 1, 30, 4),
        ] {
            let topo = Topology::new(TopologyShape::new(racks, npr), devices);
            let svc = striped_service_assignment(&topo, devices, n_services);
            for node in 0..topo.shape().nodes() {
                let node_devs = topo.devices_in_node(node).len();
                let bound = node_devs.div_ceil(n_services);
                for s in 0..n_services {
                    let c = topo.devices_in_node(node).filter(|&d| svc[d] == s).count();
                    assert!(
                        c <= bound,
                        "{racks}x{npr}/{devices}dev/{n_services}svc: node {node} \
                         holds {c} replicas of service {s} (bound {bound})"
                    );
                }
            }
        }
    }

    #[test]
    fn node_striping_preserves_the_golden_layouts() {
        // The fix must not disturb the layouts the recorded goldens ran
        // on: at the default-scale shapes the node-aware key picks the
        // same assignment the rack-only key did.
        for (racks, npr, devices, n_services) in [(4, 2, 12, 6), (4, 2, 6, 6), (2, 2, 10, 6)] {
            let topo = Topology::new(TopologyShape::new(racks, npr), devices);
            assert_eq!(
                striped_service_assignment(&topo, devices, n_services),
                rack_only_assignment(&topo, devices, n_services),
                "{racks}x{npr}/{devices}dev/{n_services}svc layout changed"
            );
        }
    }

    /// Kills both replicas of one service (flat layout: devices d and
    /// d + n_services) with a shared rack-tagged incident, with and
    /// without a standby pool.
    fn rack_blast_run(pool: usize) -> ExperimentResult {
        use resilience::{FaultDomain, FaultEvent, RecoveryPolicy, StandbyPolicy};
        let n = Zoo::standard().services().len();
        let mut cfg = ClusterConfig::tiny(SystemKind::Random, 53);
        cfg.devices = n + 1;
        // The profile carries the pool so the engine seeds it at
        // construction; the generated schedule is replaced below with
        // the hand-built blast.
        let mut profile = FaultProfile::scaled(1.0);
        profile.recovery = RecoveryPolicy {
            failover_inference: true,
            ..RecoveryPolicy::standard()
        };
        profile.recovery.standby = StandbyPolicy::warm(pool);
        cfg.faults = Some(profile);
        let mut engine = ClusterEngine::new(cfg);
        // A repair interval short enough that the repairs land before
        // the last job completes (the run ends with the final job).
        let at = SimTime::from_secs(600.0);
        let repair = SimDuration::from_mins(6.0);
        engine.set_fault_schedule(FaultSchedule::from_events(
            [0usize, n]
                .into_iter()
                .map(|d| FaultEvent {
                    at,
                    device: d,
                    kind: FaultKind::DeviceFailure { repair },
                    domain: FaultDomain::Rack(0),
                })
                .collect(),
        ));
        engine.run_scaled(0.002)
    }

    #[test]
    fn standby_promotes_when_the_blast_leaves_no_survivor() {
        let with_pool = rack_blast_run(1);
        let without = rack_blast_run(0);

        // Pool path: the service's only hope is the standby — it must
        // have been promoted, served traffic, and bounded the failover
        // latency at the shadow-switch cost.
        assert!(with_pool.faults.standby_slots >= 1);
        assert!(
            with_pool.faults.standby_promotions >= 1,
            "no standby promoted"
        );
        assert!(with_pool.faults.standby_served_requests > 0.0);
        assert!(with_pool.faults.standby_reserved_gpu_secs > 0.0);
        assert!(
            with_pool
                .faults
                .failover_latency_secs
                .contains(&gpu_sim::SHADOW_SWITCH_SECS),
            "promote latency sample missing: {:?}",
            with_pool.faults.failover_latency_secs
        );
        // The standby drains back to idle at repair, and the repaired
        // slot-holders rejoin the pool.
        assert!(with_pool.faults.standby_reseeds >= 1);

        // Against the pool-0 baseline on the identical schedule: less
        // outage time and fewer dropped requests.
        assert!(without.faults.service_outage_secs > 0.0);
        assert!(
            with_pool.faults.service_outage_secs < without.faults.service_outage_secs,
            "pool {} vs baseline {}",
            with_pool.faults.service_outage_secs,
            without.faults.service_outage_secs
        );
        assert!(
            with_pool.faults.dropped_requests < without.faults.dropped_requests,
            "pool {} vs baseline {}",
            with_pool.faults.dropped_requests,
            without.faults.dropped_requests
        );
        // The baseline's failover ledger shows the unbounded path: the
        // doomed replica's sample is the full repair interval.
        assert!(without
            .faults
            .failover_latency_secs
            .contains(&SimDuration::from_mins(6.0).as_secs()));
        assert!(
            without.faults.failover_latency_p99() >= with_pool.faults.failover_latency_p99(),
            "pool must not lengthen the failover tail"
        );
    }

    #[test]
    fn young_daly_period_raises_checkpoint_cadence_under_heavy_faults() {
        use resilience::{CheckpointPeriod, RecoveryPolicy};
        // MTBF at 400x the base rate is ~1.8h; with multi-second write
        // costs the Young/Daly optimum sqrt(2·MTBF·w) sits well under
        // the fixed 10-minute default, so the adaptive policy must
        // checkpoint at least as often as the fixed one.
        let run = |period: CheckpointPeriod| {
            let cfg = ClusterConfig::tiny(SystemKind::Random, 61)
                .with_faults(FaultProfile::scaled(400.0));
            let mut engine = ClusterEngine::new(cfg);
            engine.set_recovery_policy(RecoveryPolicy {
                checkpoint_period: period,
                ..RecoveryPolicy::standard()
            });
            engine.run_scaled(0.002)
        };
        let fixed = run(CheckpointPeriod::Fixed(SimDuration::from_mins(10.0)));
        let adaptive = run(CheckpointPeriod::YoungDaly);
        assert!(fixed.faults.checkpoint_writes > 0);
        assert!(
            adaptive.faults.checkpoint_writes >= fixed.faults.checkpoint_writes,
            "Young/Daly wrote {} checkpoints vs fixed {}",
            adaptive.faults.checkpoint_writes,
            fixed.faults.checkpoint_writes
        );
    }

    #[test]
    fn load_multiplier_raises_violations_for_adaptive_system() {
        // Note: the Random baseline's *fixed* batch 64 means higher QPS
        // can actually shrink its batch-fill wait and reduce violations;
        // the monotonicity claim of Fig. 15 is about adaptive systems,
        // so test it on GSLICE (adaptive batch, feedback partitioning).
        let run = |mult: f64| {
            let mut cfg = ClusterConfig::tiny(SystemKind::Gslice, 5);
            cfg.jobs = 10;
            cfg.load_multiplier = mult;
            ClusterEngine::new(cfg).run_scaled(0.002)
        };
        let base = run(1.0);
        let heavy = run(4.0);
        assert!(
            heavy.overall_violation_rate() >= base.overall_violation_rate(),
            "heavy {} vs base {}",
            heavy.overall_violation_rate(),
            base.overall_violation_rate()
        );
    }
}
