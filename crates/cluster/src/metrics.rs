//! Experiment-level metrics: everything §7 reports.

use std::collections::HashMap;

use simcore::StreamingStats;
use workloads::ServiceId;

/// Pairwise sum combiner for `(numerator, denominator)` partials.
fn sum2(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 + b.0, a.1 + b.1)
}

/// `num / den`, or zero when nothing accrued.
fn ratio_or_zero(folded: Option<(f64, f64)>) -> f64 {
    match folded {
        Some((v, r)) if r > 0.0 => v / r,
        _ => 0.0,
    }
}

/// Per-service SLO accounting.
#[derive(Clone, Debug, Default)]
pub struct ServiceMetrics {
    /// Requests served (analytic accrual).
    pub requests: f64,
    /// Requests whose end-to-end latency exceeded the SLO. For
    /// generative services this is the request-level (TTFT) count, so
    /// the request-weighted aggregates stay comparable across fleets.
    pub violations: f64,
    /// Time-weighted mean of the P99 batch latency, seconds. For
    /// generative services the recorded latency is the p99 inter-token
    /// latency of the running decode batch.
    pub p99_stats: StreamingStats,
    /// Tokens generated (decode steps, analytic accrual). Identically
    /// zero for classifier services, which keeps their canonical text
    /// byte-identical to the pre-LLM renderer.
    pub tokens: f64,
    /// Tokens whose inter-token latency exceeded the per-token SLO.
    pub itl_violations: f64,
    /// Requests whose time-to-first-token exceeded the TTFT SLO.
    pub ttft_violations: f64,
}

impl ServiceMetrics {
    /// SLO violation rate in `[0, 1]`.
    pub fn violation_rate(&self) -> f64 {
        if self.requests <= 0.0 {
            0.0
        } else {
            (self.violations / self.requests).clamp(0.0, 1.0)
        }
    }

    /// Per-token (inter-token latency) SLO violation rate in `[0, 1]`.
    /// Zero for classifier services, which never accrue tokens.
    pub fn itl_violation_rate(&self) -> f64 {
        if self.tokens <= 0.0 {
            0.0
        } else {
            (self.itl_violations / self.tokens).clamp(0.0, 1.0)
        }
    }

    /// Folds another partial accumulator into this one: float fields
    /// sum, the P99 stream merges via parallel Welford. The commit
    /// barrier reduces per-device partials with this in device-ascending
    /// order, so the merged value is independent of which worker
    /// produced which partial.
    pub fn merge(&mut self, other: &ServiceMetrics) {
        self.requests += other.requests;
        self.violations += other.violations;
        self.p99_stats.merge(&other.p99_stats);
        self.tokens += other.tokens;
        self.itl_violations += other.itl_violations;
        self.ttft_violations += other.ttft_violations;
    }

    /// Time-to-first-token SLO violation rate in `[0, 1]` (per
    /// request). Zero for classifier services.
    pub fn ttft_violation_rate(&self) -> f64 {
        if self.requests <= 0.0 {
            0.0
        } else {
            (self.ttft_violations / self.requests).clamp(0.0, 1.0)
        }
    }
}

/// Dense per-service metrics keyed by [`ServiceId`] index — the
/// kernel-side replacement for `HashMap<ServiceId, ServiceMetrics>` on
/// the hot accrual path. Service ids are assigned densely at zoo
/// construction, so a flat `Vec` plus a touched mask reproduces the
/// map's exact observable behavior (an entry exists iff some accrual
/// touched it) without hashing or allocating per lookup.
#[derive(Clone, Debug, Default)]
pub struct ServiceTable {
    metrics: Vec<ServiceMetrics>,
    touched: Vec<bool>,
}

impl ServiceTable {
    /// A table pre-sized for services `0..n` (no entries exist yet).
    pub fn new(n: usize) -> Self {
        ServiceTable {
            metrics: vec![ServiceMetrics::default(); n],
            touched: vec![false; n],
        }
    }

    /// The metrics slot for `id`, created default on first touch —
    /// exactly `HashMap::entry(id).or_default()`. Ids beyond the
    /// pre-sized range grow the table (allocation then, never after).
    pub fn entry(&mut self, id: ServiceId) -> &mut ServiceMetrics {
        let i = id.0;
        if i >= self.metrics.len() {
            self.metrics.resize_with(i + 1, ServiceMetrics::default);
            self.touched.resize(i + 1, false);
        }
        self.touched[i] = true;
        &mut self.metrics[i]
    }

    /// The metrics for `id`, `None` unless some accrual touched it —
    /// exactly `HashMap::get(&id)`.
    pub fn get(&self, id: ServiceId) -> Option<&ServiceMetrics> {
        if self.touched.get(id.0).copied().unwrap_or(false) {
            Some(&self.metrics[id.0])
        } else {
            None
        }
    }

    /// Number of touched entries.
    pub fn len(&self) -> usize {
        self.touched.iter().filter(|&&t| t).count()
    }

    /// `true` when no entry was ever touched.
    pub fn is_empty(&self) -> bool {
        !self.touched.iter().any(|&t| t)
    }

    /// Drains the touched entries into the `HashMap` form the result
    /// carries, leaving the table empty (capacity retained). The key
    /// set is exactly the set of ids ever passed to
    /// [`ServiceTable::entry`], matching the map it replaced.
    pub fn take_map(&mut self) -> HashMap<ServiceId, ServiceMetrics> {
        let mut out = HashMap::new();
        for (i, touched) in self.touched.iter_mut().enumerate() {
            if std::mem::take(touched) {
                out.insert(ServiceId(i), std::mem::take(&mut self.metrics[i]));
            }
        }
        out
    }
}

/// Tuning/multiplexing overhead statistics (Fig. 18).
#[derive(Clone, Debug, Default)]
pub struct OverheadMetrics {
    /// GP-LCB iterations per tuning pass.
    pub bo_iterations: Vec<usize>,
    /// Wall-clock placement-decision latency, seconds.
    pub placement_secs: Vec<f64>,
}

impl OverheadMetrics {
    /// Mean BO iterations.
    pub fn mean_bo_iterations(&self) -> f64 {
        if self.bo_iterations.is_empty() {
            0.0
        } else {
            self.bo_iterations.iter().sum::<usize>() as f64 / self.bo_iterations.len() as f64
        }
    }

    /// Maximum BO iterations.
    pub fn max_bo_iterations(&self) -> usize {
        self.bo_iterations.iter().copied().max().unwrap_or(0)
    }

    /// Mean placement latency in milliseconds.
    pub fn mean_placement_ms(&self) -> f64 {
        if self.placement_secs.is_empty() {
            0.0
        } else {
            self.placement_secs.iter().sum::<f64>() / self.placement_secs.len() as f64 * 1e3
        }
    }

    /// Maximum placement latency in milliseconds.
    pub fn max_placement_ms(&self) -> f64 {
        self.placement_secs.iter().cloned().fold(0.0, f64::max) * 1e3
    }
}

/// Fault-injection and recovery accounting for one run.
#[derive(Clone, Debug, Default)]
pub struct FaultMetrics {
    /// Hard device failures injected.
    pub device_failures: usize,
    /// Transient slowdown episodes injected.
    pub slowdowns: usize,
    /// Training-process crashes injected.
    pub process_crashes: usize,
    /// MPS-daemon failures injected (cold restart of every resident).
    pub mps_failures: usize,
    /// Training jobs evicted by device failures.
    pub training_evictions: usize,
    /// Inference replicas whose traffic was re-routed to survivors.
    pub inference_failovers: usize,
    /// Iterations redone because faults rolled jobs back to their last
    /// checkpoint.
    pub lost_iterations: f64,
    /// Requests served by surviving replicas on behalf of failed ones.
    pub rerouted_requests: f64,
    /// Requests with no surviving replica to serve them — all counted
    /// as SLO violations, never silently dropped.
    pub dropped_requests: f64,
    /// Cumulative device downtime, seconds (summed over devices).
    pub device_down_secs: f64,
    /// Cumulative training outage from process/MPS restarts, seconds
    /// (summed over affected processes).
    pub restart_downtime_secs: f64,
    /// Times a service lost its *last* live replica — every survivor of
    /// the triggering fault sat inside the same blast radius, so no
    /// failover target existed (total outage).
    pub service_outages: usize,
    /// The subset of `service_outages` triggered by a correlated
    /// (node- or rack-scoped) fault rather than an independent device
    /// failure.
    pub correlated_outages: usize,
    /// Cumulative time services spent with zero live replicas, seconds
    /// (summed over services; all traffic in these windows is counted
    /// as dropped + violated).
    pub service_outage_secs: f64,
    /// Training checkpoints written (period boundaries crossed).
    pub checkpoint_writes: u64,
    /// Cumulative running time spent writing checkpoints, seconds.
    pub checkpoint_write_secs: f64,
    /// Warm-standby shadow instances seeded into the pool at start.
    pub standby_slots: usize,
    /// Standby promotions that completed (standby took over traffic).
    pub standby_promotions: usize,
    /// Standbys drained back to idle / re-seeded after a repair.
    pub standby_reseeds: usize,
    /// Standing cost of the pool: reserved GPU%-seconds, idle or
    /// active, summed over devices.
    pub standby_reserved_gpu_secs: f64,
    /// Requests served by promoted standbys.
    pub standby_served_requests: f64,
    /// Per-failure time-to-restored-service samples, seconds: the
    /// bounded promote latency when a standby covered, `0` when
    /// survivors absorbed the load instantly, the full repair time when
    /// the traffic dropped.
    pub failover_latency_secs: Vec<f64>,
}

impl FaultMetrics {
    /// Total injected faults of every class.
    pub fn total_faults(&self) -> usize {
        self.device_failures + self.slowdowns + self.process_crashes + self.mps_failures
    }

    /// p99 of the failover-latency samples (nearest-rank over the
    /// sorted list), `0.0` when no replica failure carried traffic.
    pub fn failover_latency_p99(&self) -> f64 {
        if self.failover_latency_secs.is_empty() {
            return 0.0;
        }
        let mut sorted = self.failover_latency_secs.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

/// The full outcome of one end-to-end run.
#[derive(Clone, Debug, Default)]
pub struct ExperimentResult {
    /// System label.
    pub system: String,
    /// Per-service SLO metrics.
    pub services: HashMap<ServiceId, ServiceMetrics>,
    /// Completion-time statistics over finished jobs, seconds.
    pub ct: StreamingStats,
    /// Waiting-time statistics, seconds.
    pub waiting: StreamingStats,
    /// Makespan: first submission to last completion, seconds.
    pub makespan_secs: f64,
    /// Cluster-mean SM utilization (time-weighted).
    pub mean_sm_util: f64,
    /// Cluster-mean memory utilization (time-weighted).
    pub mean_mem_util: f64,
    /// `(time, cluster SM util, cluster mem util)` samples (Fig. 10).
    pub util_series: Vec<(f64, f64, f64)>,
    /// Fraction of time each device spent with memory swapped, averaged
    /// over devices hosting each service (Tab. 4).
    pub swap_time_fraction: HashMap<ServiceId, f64>,
    /// Mean swap transfer time, seconds (Fig. 16 commentary).
    pub mean_swap_transfer_secs: f64,
    /// Tuning / placement overheads (Fig. 18).
    pub overhead: OverheadMetrics,
    /// Fault-injection and recovery accounting (zero in fault-free runs).
    pub faults: FaultMetrics,
    /// Useful training iterations retained at the end of the run (work
    /// lost to rollbacks already excluded).
    pub useful_iterations: f64,
    /// Jobs completed.
    pub jobs_completed: usize,
    /// Jobs submitted.
    pub jobs_submitted: usize,
    /// Wall-clock runtime of the simulation itself, seconds.
    pub wall_clock_secs: f64,
}

impl ExperimentResult {
    /// Training goodput: useful iterations retained per hour of
    /// makespan. Falls with fault rate as rollbacks redo work and
    /// downtime stalls progress.
    pub fn goodput_iters_per_hour(&self) -> f64 {
        if self.makespan_secs <= 0.0 {
            0.0
        } else {
            self.useful_iterations / (self.makespan_secs / 3600.0)
        }
    }

    /// Overall SLO violation rate across services (request-weighted).
    /// Summed in service-id order: `HashMap` iteration order is
    /// unspecified and float addition is order-sensitive, which would
    /// break bit-identical replay.
    pub fn overall_violation_rate(&self) -> f64 {
        let items: Vec<(ServiceId, (f64, f64))> = self
            .services
            .iter()
            .map(|(&s, m)| (s, (m.violations, m.requests)))
            .collect();
        ratio_or_zero(simcore::fold_ordered(items, sum2))
    }

    /// Overall per-token (inter-token latency) SLO violation rate
    /// across services, token-weighted. Summed in service-id order for
    /// the same bit-replay reason as [`Self::overall_violation_rate`].
    /// Zero when no service accrued tokens (classifier-only runs).
    pub fn overall_token_violation_rate(&self) -> f64 {
        let items: Vec<(ServiceId, (f64, f64))> = self
            .services
            .iter()
            .map(|(&s, m)| (s, (m.itl_violations, m.tokens)))
            .collect();
        ratio_or_zero(simcore::fold_ordered(items, sum2))
    }

    /// Overall time-to-first-token SLO violation rate across generative
    /// services (request-weighted over services that accrued tokens).
    pub fn overall_ttft_violation_rate(&self) -> f64 {
        let items: Vec<(ServiceId, (f64, f64))> = self
            .services
            .iter()
            .filter(|(_, m)| m.tokens > 0.0)
            .map(|(&s, m)| (s, (m.ttft_violations, m.requests)))
            .collect();
        ratio_or_zero(simcore::fold_ordered(items, sum2))
    }

    /// Violation rate for one service.
    pub fn violation_rate(&self, service: ServiceId) -> f64 {
        self.services
            .get(&service)
            .map_or(0.0, ServiceMetrics::violation_rate)
    }

    /// Mean completion time in hours.
    pub fn mean_ct_hours(&self) -> f64 {
        self.ct.mean() / 3600.0
    }

    /// Mean waiting time in hours.
    pub fn mean_waiting_hours(&self) -> f64 {
        self.waiting.mean() / 3600.0
    }

    /// Makespan in hours.
    pub fn makespan_hours(&self) -> f64 {
        self.makespan_secs / 3600.0
    }

    /// Canonical text rendering of every *simulation-determined* field,
    /// for bit-for-bit comparisons and golden snapshots.
    ///
    /// Two results produce identical text iff every field is identical
    /// at the bit level: floats are rendered with `{:?}` (Rust's
    /// shortest round-trip formatting) so equality of text implies
    /// equality of bits, map-backed fields are emitted in sorted key
    /// order, and `wall_clock_secs` — host timing, not simulation
    /// output — is deliberately excluded.
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "system={}", self.system);
        let mut services: Vec<_> = self.services.iter().collect();
        services.sort_by_key(|(id, _)| id.0);
        for (id, m) in services {
            let _ = writeln!(
                s,
                "service[{}]: requests={:?} violations={:?} p99={}",
                id.0,
                m.requests,
                m.violations,
                stats_repr(&m.p99_stats)
            );
            // Token accounting appears only when decode traffic accrued:
            // a classifier-only run stays byte-identical to the pre-LLM
            // renderer (same gating idea as the standby block below).
            if m.tokens > 0.0 {
                let _ = writeln!(
                    s,
                    "service[{}].tokens: tokens={:?} itl_violations={:?} ttft_violations={:?}",
                    id.0, m.tokens, m.itl_violations, m.ttft_violations
                );
            }
        }
        let _ = writeln!(s, "ct: {}", stats_repr(&self.ct));
        let _ = writeln!(s, "waiting: {}", stats_repr(&self.waiting));
        let _ = writeln!(s, "makespan_secs={:?}", self.makespan_secs);
        let _ = writeln!(s, "mean_sm_util={:?}", self.mean_sm_util);
        let _ = writeln!(s, "mean_mem_util={:?}", self.mean_mem_util);
        let _ = writeln!(
            s,
            "util_series: len={} digest={:016x}",
            self.util_series.len(),
            fnv64(
                self.util_series
                    .iter()
                    .flat_map(|&(t, sm, mem)| { [t.to_bits(), sm.to_bits(), mem.to_bits()] })
            )
        );
        let mut swaps: Vec<_> = self.swap_time_fraction.iter().collect();
        swaps.sort_by_key(|(id, _)| id.0);
        for (id, frac) in swaps {
            let _ = writeln!(s, "swap_time_fraction[{}]={:?}", id.0, frac);
        }
        let _ = writeln!(
            s,
            "mean_swap_transfer_secs={:?}",
            self.mean_swap_transfer_secs
        );
        // `placement_secs` holds *measured host latencies* (Fig. 18),
        // which — like `wall_clock_secs` — are timing, not simulation
        // output; only the decision count is part of the identity.
        let _ = writeln!(
            s,
            "overhead: bo_len={} bo_digest={:016x} placement_len={}",
            self.overhead.bo_iterations.len(),
            fnv64(self.overhead.bo_iterations.iter().map(|&n| n as u64)),
            self.overhead.placement_secs.len(),
        );
        let f = &self.faults;
        let _ = writeln!(
            s,
            "faults: dev={} slow={} crash={} mps={} evict={} failover={} \
             lost_iters={:?} rerouted={:?} dropped={:?} down_secs={:?} restart_secs={:?}",
            f.device_failures,
            f.slowdowns,
            f.process_crashes,
            f.mps_failures,
            f.training_evictions,
            f.inference_failovers,
            f.lost_iterations,
            f.rerouted_requests,
            f.dropped_requests,
            f.device_down_secs,
            f.restart_downtime_secs
        );
        let _ = writeln!(
            s,
            "outages: total={} correlated={} secs={:?} ckpt_writes={} ckpt_secs={:?}",
            f.service_outages,
            f.correlated_outages,
            f.service_outage_secs,
            f.checkpoint_writes,
            f.checkpoint_write_secs
        );
        // Standby accounting appears only when a pool was provisioned:
        // a pool-size-0 run stays byte-identical to a pre-standby run.
        if f.standby_slots > 0 {
            let _ = writeln!(
                s,
                "standby: slots={} promotions={} reseeds={} reserved={:?} served={:?} \
                 failover_p99={:?} failover_n={}",
                f.standby_slots,
                f.standby_promotions,
                f.standby_reseeds,
                f.standby_reserved_gpu_secs,
                f.standby_served_requests,
                f.failover_latency_p99(),
                f.failover_latency_secs.len()
            );
        }
        let _ = writeln!(s, "useful_iterations={:?}", self.useful_iterations);
        let _ = writeln!(s, "jobs={}/{}", self.jobs_completed, self.jobs_submitted);
        s
    }

    /// 64-bit digest of [`ExperimentResult::canonical_text`], for cheap
    /// equality assertions over whole result series.
    pub fn fingerprint(&self) -> u64 {
        fnv64(self.canonical_text().bytes().map(u64::from))
    }
}

/// Canonical rendering of a [`StreamingStats`]: the full accumulator
/// state observable through its API, floats in round-trip form.
fn stats_repr(s: &StreamingStats) -> String {
    format!(
        "count={} mean={:?} var={:?} min={:?} max={:?}",
        s.count(),
        s.mean(),
        s.variance(),
        s.min(),
        s.max()
    )
}

/// FNV-1a over a stream of 64-bit words (little-endian bytes).
fn fnv64(words: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_rates_aggregate() {
        let mut r = ExperimentResult::default();
        r.services.insert(
            ServiceId(0),
            ServiceMetrics {
                requests: 1000.0,
                violations: 10.0,
                ..Default::default()
            },
        );
        r.services.insert(
            ServiceId(1),
            ServiceMetrics {
                requests: 3000.0,
                violations: 0.0,
                ..Default::default()
            },
        );
        assert!((r.violation_rate(ServiceId(0)) - 0.01).abs() < 1e-12);
        assert!((r.overall_violation_rate() - 10.0 / 4000.0).abs() < 1e-12);
        assert_eq!(r.violation_rate(ServiceId(9)), 0.0);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = ServiceMetrics::default();
        assert_eq!(m.violation_rate(), 0.0);
        let o = OverheadMetrics::default();
        assert_eq!(o.mean_bo_iterations(), 0.0);
        assert_eq!(o.mean_placement_ms(), 0.0);
    }

    #[test]
    fn fault_totals_and_goodput() {
        let mut r = ExperimentResult {
            makespan_secs: 7200.0,
            useful_iterations: 9000.0,
            ..Default::default()
        };
        r.faults.device_failures = 2;
        r.faults.process_crashes = 3;
        assert_eq!(r.faults.total_faults(), 5);
        assert!((r.goodput_iters_per_hour() - 4500.0).abs() < 1e-9);
        r.makespan_secs = 0.0;
        assert_eq!(r.goodput_iters_per_hour(), 0.0);
    }

    #[test]
    fn fingerprint_ignores_wall_clock_but_not_results() {
        let mut a = ExperimentResult {
            makespan_secs: 100.0,
            wall_clock_secs: 1.0,
            ..Default::default()
        };
        a.services.insert(
            ServiceId(2),
            ServiceMetrics {
                requests: 10.0,
                violations: 1.0,
                ..Default::default()
            },
        );
        let mut b = a.clone();
        b.wall_clock_secs = 999.0; // Host timing must not affect identity.
        assert_eq!(a.canonical_text(), b.canonical_text());
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.makespan_secs = 100.0000001; // Any simulated field must.
        assert_ne!(a.canonical_text(), b.canonical_text());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn canonical_text_orders_services_by_id() {
        let mut r = ExperimentResult::default();
        for id in [3usize, 0, 7] {
            r.services.insert(ServiceId(id), ServiceMetrics::default());
        }
        let text = r.canonical_text();
        let pos = |needle: &str| text.find(needle).expect(needle);
        assert!(pos("service[0]") < pos("service[3]"));
        assert!(pos("service[3]") < pos("service[7]"));
    }

    /// Every aggregate that folds over a map must be invariant to the
    /// map's (unspecified) iteration order. The two such folds are
    /// `overall_violation_rate` and `canonical_text` (and through it
    /// `fingerprint`); both sort by service id before touching floats,
    /// and this test pins that by rebuilding the same logical result
    /// under several insertion orders and demanding bit-equality.
    #[test]
    fn aggregates_invariant_under_insertion_order() {
        // Values chosen so float addition is genuinely order-sensitive:
        // summing these in a different order changes the low bits.
        let entries = [
            (0usize, 1e15, 7.0, 0.125),
            (3, 3.0, 1e-3, 0.25),
            (1, 1e-8, 1e9, 0.5),
            (7, 2.5e7, 0.1, 0.0625),
            (2, 9.0, 1e-7, 0.75),
        ];
        let orders: [[usize; 5]; 4] = [
            [0, 1, 2, 3, 4],
            [4, 3, 2, 1, 0],
            [2, 0, 4, 1, 3],
            [3, 4, 0, 2, 1],
        ];
        let build = |order: &[usize]| {
            let mut r = ExperimentResult::default();
            for &i in order {
                let (id, req, viol, swap) = entries[i];
                r.services.insert(
                    ServiceId(id),
                    ServiceMetrics {
                        requests: req,
                        violations: viol,
                        ..Default::default()
                    },
                );
                r.swap_time_fraction.insert(ServiceId(id), swap);
            }
            r
        };
        let reference = build(&orders[0]);
        for order in &orders[1..] {
            let r = build(order);
            assert_eq!(
                r.overall_violation_rate().to_bits(),
                reference.overall_violation_rate().to_bits(),
                "overall_violation_rate must not depend on insertion order"
            );
            assert_eq!(
                r.canonical_text(),
                reference.canonical_text(),
                "canonical_text must not depend on insertion order"
            );
            assert_eq!(r.fingerprint(), reference.fingerprint());
        }
    }

    #[test]
    fn service_table_mirrors_hashmap_entry_semantics() {
        let mut table = ServiceTable::new(4);
        let mut model: HashMap<ServiceId, ServiceMetrics> = HashMap::new();
        assert!(table.is_empty());
        assert!(table.get(ServiceId(0)).is_none(), "untouched is absent");
        for &(id, req, viol) in &[(2usize, 10.0, 1.0), (0, 5.0, 0.0), (2, 3.0, 2.0)] {
            let m = table.entry(ServiceId(id));
            m.requests += req;
            m.violations += viol;
            let m = model.entry(ServiceId(id)).or_default();
            m.requests += req;
            m.violations += viol;
        }
        assert_eq!(table.len(), model.len());
        for id in 0..4 {
            let id = ServiceId(id);
            assert_eq!(
                table.get(id).map(|m| (m.requests, m.violations)),
                model.get(&id).map(|m| (m.requests, m.violations)),
                "{id:?}"
            );
        }
    }

    #[test]
    fn service_table_take_map_round_trips_key_set() {
        let mut table = ServiceTable::new(2);
        table.entry(ServiceId(1)).requests = 7.0;
        // An id beyond the pre-sized range grows the table.
        table.entry(ServiceId(5)).violations = 3.0;
        let map = table.take_map();
        let mut keys: Vec<usize> = map.keys().map(|s| s.0).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 5], "exactly the touched ids");
        assert_eq!(map[&ServiceId(1)].requests, 7.0);
        assert_eq!(map[&ServiceId(5)].violations, 3.0);
        // Draining resets the table for the next run.
        assert!(table.is_empty());
        assert!(table.get(ServiceId(1)).is_none());
        assert!(table.take_map().is_empty());
    }

    #[test]
    fn overhead_summaries() {
        let o = OverheadMetrics {
            bo_iterations: vec![10, 20, 24],
            placement_secs: vec![0.010, 0.020],
        };
        assert_eq!(o.mean_bo_iterations(), 18.0);
        assert_eq!(o.max_bo_iterations(), 24);
        assert!((o.mean_placement_ms() - 15.0).abs() < 1e-9);
        assert!((o.max_placement_ms() - 20.0).abs() < 1e-9);
    }
}
