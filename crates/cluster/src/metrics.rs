//! Experiment-level metrics: everything §7 reports.

use std::collections::HashMap;

use simcore::StreamingStats;
use workloads::ServiceId;

/// Per-service SLO accounting.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct ServiceMetrics {
    /// Requests served (analytic accrual).
    pub requests: f64,
    /// Requests whose end-to-end latency exceeded the SLO.
    pub violations: f64,
    /// Time-weighted mean of the P99 batch latency, seconds.
    pub p99_stats: StreamingStats,
}

impl ServiceMetrics {
    /// SLO violation rate in `[0, 1]`.
    pub fn violation_rate(&self) -> f64 {
        if self.requests <= 0.0 {
            0.0
        } else {
            (self.violations / self.requests).clamp(0.0, 1.0)
        }
    }
}

/// Tuning/multiplexing overhead statistics (Fig. 18).
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct OverheadMetrics {
    /// GP-LCB iterations per tuning pass.
    pub bo_iterations: Vec<usize>,
    /// Wall-clock placement-decision latency, seconds.
    pub placement_secs: Vec<f64>,
}

impl OverheadMetrics {
    /// Mean BO iterations.
    pub fn mean_bo_iterations(&self) -> f64 {
        if self.bo_iterations.is_empty() {
            0.0
        } else {
            self.bo_iterations.iter().sum::<usize>() as f64 / self.bo_iterations.len() as f64
        }
    }

    /// Maximum BO iterations.
    pub fn max_bo_iterations(&self) -> usize {
        self.bo_iterations.iter().copied().max().unwrap_or(0)
    }

    /// Mean placement latency in milliseconds.
    pub fn mean_placement_ms(&self) -> f64 {
        if self.placement_secs.is_empty() {
            0.0
        } else {
            self.placement_secs.iter().sum::<f64>() / self.placement_secs.len() as f64 * 1e3
        }
    }

    /// Maximum placement latency in milliseconds.
    pub fn max_placement_ms(&self) -> f64 {
        self.placement_secs.iter().cloned().fold(0.0, f64::max) * 1e3
    }
}

/// The full outcome of one end-to-end run.
///
/// Serializable (serde) so experiment binaries can persist raw results
/// for downstream plotting.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct ExperimentResult {
    /// System label.
    pub system: String,
    /// Per-service SLO metrics.
    pub services: HashMap<ServiceId, ServiceMetrics>,
    /// Completion-time statistics over finished jobs, seconds.
    pub ct: StreamingStats,
    /// Waiting-time statistics, seconds.
    pub waiting: StreamingStats,
    /// Makespan: first submission to last completion, seconds.
    pub makespan_secs: f64,
    /// Cluster-mean SM utilization (time-weighted).
    pub mean_sm_util: f64,
    /// Cluster-mean memory utilization (time-weighted).
    pub mean_mem_util: f64,
    /// `(time, cluster SM util, cluster mem util)` samples (Fig. 10).
    pub util_series: Vec<(f64, f64, f64)>,
    /// Fraction of time each device spent with memory swapped, averaged
    /// over devices hosting each service (Tab. 4).
    pub swap_time_fraction: HashMap<ServiceId, f64>,
    /// Mean swap transfer time, seconds (Fig. 16 commentary).
    pub mean_swap_transfer_secs: f64,
    /// Tuning / placement overheads (Fig. 18).
    pub overhead: OverheadMetrics,
    /// Jobs completed.
    pub jobs_completed: usize,
    /// Jobs submitted.
    pub jobs_submitted: usize,
    /// Wall-clock runtime of the simulation itself, seconds.
    pub wall_clock_secs: f64,
}

impl ExperimentResult {
    /// Overall SLO violation rate across services (request-weighted).
    pub fn overall_violation_rate(&self) -> f64 {
        let (v, r) = self
            .services
            .values()
            .fold((0.0, 0.0), |(v, r), m| (v + m.violations, r + m.requests));
        if r <= 0.0 {
            0.0
        } else {
            v / r
        }
    }

    /// Violation rate for one service.
    pub fn violation_rate(&self, service: ServiceId) -> f64 {
        self.services
            .get(&service)
            .map_or(0.0, ServiceMetrics::violation_rate)
    }

    /// Mean completion time in hours.
    pub fn mean_ct_hours(&self) -> f64 {
        self.ct.mean() / 3600.0
    }

    /// Mean waiting time in hours.
    pub fn mean_waiting_hours(&self) -> f64 {
        self.waiting.mean() / 3600.0
    }

    /// Makespan in hours.
    pub fn makespan_hours(&self) -> f64 {
        self.makespan_secs / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_rates_aggregate() {
        let mut r = ExperimentResult::default();
        r.services.insert(
            ServiceId(0),
            ServiceMetrics {
                requests: 1000.0,
                violations: 10.0,
                p99_stats: StreamingStats::new(),
            },
        );
        r.services.insert(
            ServiceId(1),
            ServiceMetrics {
                requests: 3000.0,
                violations: 0.0,
                p99_stats: StreamingStats::new(),
            },
        );
        assert!((r.violation_rate(ServiceId(0)) - 0.01).abs() < 1e-12);
        assert!((r.overall_violation_rate() - 10.0 / 4000.0).abs() < 1e-12);
        assert_eq!(r.violation_rate(ServiceId(9)), 0.0);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = ServiceMetrics::default();
        assert_eq!(m.violation_rate(), 0.0);
        let o = OverheadMetrics::default();
        assert_eq!(o.mean_bo_iterations(), 0.0);
        assert_eq!(o.mean_placement_ms(), 0.0);
    }

    #[test]
    fn results_serialize_roundtrip() {
        let mut r = ExperimentResult {
            system: "Mudi".into(),
            makespan_secs: 1234.5,
            ..Default::default()
        };
        r.ct.record(10.0);
        r.services.insert(
            ServiceId(2),
            ServiceMetrics {
                requests: 10.0,
                violations: 1.0,
                p99_stats: StreamingStats::new(),
            },
        );
        // No JSON crate is sanctioned for this repo, so exercise the
        // Serialize/Deserialize impls through a static bound check;
        // downstream consumers pick their own serde format.
        fn assert_roundtrippable<T: serde::Serialize + serde::de::DeserializeOwned>(_t: &T) {}
        assert_roundtrippable(&r);
    }

    #[test]
    fn overhead_summaries() {
        let o = OverheadMetrics {
            bo_iterations: vec![10, 20, 24],
            placement_secs: vec![0.010, 0.020],
        };
        assert_eq!(o.mean_bo_iterations(), 18.0);
        assert_eq!(o.max_bo_iterations(), 24);
        assert!((o.mean_placement_ms() - 15.0).abs() < 1e-9);
        assert!((o.max_placement_ms() - 20.0).abs() < 1e-9);
    }
}
