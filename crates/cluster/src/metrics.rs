//! Experiment-level metrics: everything §7 reports.

use std::collections::HashMap;

use simcore::StreamingStats;
use workloads::ServiceId;

/// Per-service SLO accounting.
#[derive(Clone, Debug, Default)]
pub struct ServiceMetrics {
    /// Requests served (analytic accrual).
    pub requests: f64,
    /// Requests whose end-to-end latency exceeded the SLO.
    pub violations: f64,
    /// Time-weighted mean of the P99 batch latency, seconds.
    pub p99_stats: StreamingStats,
}

impl ServiceMetrics {
    /// SLO violation rate in `[0, 1]`.
    pub fn violation_rate(&self) -> f64 {
        if self.requests <= 0.0 {
            0.0
        } else {
            (self.violations / self.requests).clamp(0.0, 1.0)
        }
    }
}

/// Tuning/multiplexing overhead statistics (Fig. 18).
#[derive(Clone, Debug, Default)]
pub struct OverheadMetrics {
    /// GP-LCB iterations per tuning pass.
    pub bo_iterations: Vec<usize>,
    /// Wall-clock placement-decision latency, seconds.
    pub placement_secs: Vec<f64>,
}

impl OverheadMetrics {
    /// Mean BO iterations.
    pub fn mean_bo_iterations(&self) -> f64 {
        if self.bo_iterations.is_empty() {
            0.0
        } else {
            self.bo_iterations.iter().sum::<usize>() as f64 / self.bo_iterations.len() as f64
        }
    }

    /// Maximum BO iterations.
    pub fn max_bo_iterations(&self) -> usize {
        self.bo_iterations.iter().copied().max().unwrap_or(0)
    }

    /// Mean placement latency in milliseconds.
    pub fn mean_placement_ms(&self) -> f64 {
        if self.placement_secs.is_empty() {
            0.0
        } else {
            self.placement_secs.iter().sum::<f64>() / self.placement_secs.len() as f64 * 1e3
        }
    }

    /// Maximum placement latency in milliseconds.
    pub fn max_placement_ms(&self) -> f64 {
        self.placement_secs.iter().cloned().fold(0.0, f64::max) * 1e3
    }
}

/// Fault-injection and recovery accounting for one run.
#[derive(Clone, Debug, Default)]
pub struct FaultMetrics {
    /// Hard device failures injected.
    pub device_failures: usize,
    /// Transient slowdown episodes injected.
    pub slowdowns: usize,
    /// Training-process crashes injected.
    pub process_crashes: usize,
    /// MPS-daemon failures injected (cold restart of every resident).
    pub mps_failures: usize,
    /// Training jobs evicted by device failures.
    pub training_evictions: usize,
    /// Inference replicas whose traffic was re-routed to survivors.
    pub inference_failovers: usize,
    /// Iterations redone because faults rolled jobs back to their last
    /// checkpoint.
    pub lost_iterations: f64,
    /// Requests served by surviving replicas on behalf of failed ones.
    pub rerouted_requests: f64,
    /// Requests with no surviving replica to serve them — all counted
    /// as SLO violations, never silently dropped.
    pub dropped_requests: f64,
    /// Cumulative device downtime, seconds (summed over devices).
    pub device_down_secs: f64,
    /// Cumulative training outage from process/MPS restarts, seconds
    /// (summed over affected processes).
    pub restart_downtime_secs: f64,
}

impl FaultMetrics {
    /// Total injected faults of every class.
    pub fn total_faults(&self) -> usize {
        self.device_failures + self.slowdowns + self.process_crashes + self.mps_failures
    }
}

/// The full outcome of one end-to-end run.
#[derive(Clone, Debug, Default)]
pub struct ExperimentResult {
    /// System label.
    pub system: String,
    /// Per-service SLO metrics.
    pub services: HashMap<ServiceId, ServiceMetrics>,
    /// Completion-time statistics over finished jobs, seconds.
    pub ct: StreamingStats,
    /// Waiting-time statistics, seconds.
    pub waiting: StreamingStats,
    /// Makespan: first submission to last completion, seconds.
    pub makespan_secs: f64,
    /// Cluster-mean SM utilization (time-weighted).
    pub mean_sm_util: f64,
    /// Cluster-mean memory utilization (time-weighted).
    pub mean_mem_util: f64,
    /// `(time, cluster SM util, cluster mem util)` samples (Fig. 10).
    pub util_series: Vec<(f64, f64, f64)>,
    /// Fraction of time each device spent with memory swapped, averaged
    /// over devices hosting each service (Tab. 4).
    pub swap_time_fraction: HashMap<ServiceId, f64>,
    /// Mean swap transfer time, seconds (Fig. 16 commentary).
    pub mean_swap_transfer_secs: f64,
    /// Tuning / placement overheads (Fig. 18).
    pub overhead: OverheadMetrics,
    /// Fault-injection and recovery accounting (zero in fault-free runs).
    pub faults: FaultMetrics,
    /// Useful training iterations retained at the end of the run (work
    /// lost to rollbacks already excluded).
    pub useful_iterations: f64,
    /// Jobs completed.
    pub jobs_completed: usize,
    /// Jobs submitted.
    pub jobs_submitted: usize,
    /// Wall-clock runtime of the simulation itself, seconds.
    pub wall_clock_secs: f64,
}

impl ExperimentResult {
    /// Training goodput: useful iterations retained per hour of
    /// makespan. Falls with fault rate as rollbacks redo work and
    /// downtime stalls progress.
    pub fn goodput_iters_per_hour(&self) -> f64 {
        if self.makespan_secs <= 0.0 {
            0.0
        } else {
            self.useful_iterations / (self.makespan_secs / 3600.0)
        }
    }

    /// Overall SLO violation rate across services (request-weighted).
    pub fn overall_violation_rate(&self) -> f64 {
        let (v, r) = self
            .services
            .values()
            .fold((0.0, 0.0), |(v, r), m| (v + m.violations, r + m.requests));
        if r <= 0.0 {
            0.0
        } else {
            v / r
        }
    }

    /// Violation rate for one service.
    pub fn violation_rate(&self, service: ServiceId) -> f64 {
        self.services
            .get(&service)
            .map_or(0.0, ServiceMetrics::violation_rate)
    }

    /// Mean completion time in hours.
    pub fn mean_ct_hours(&self) -> f64 {
        self.ct.mean() / 3600.0
    }

    /// Mean waiting time in hours.
    pub fn mean_waiting_hours(&self) -> f64 {
        self.waiting.mean() / 3600.0
    }

    /// Makespan in hours.
    pub fn makespan_hours(&self) -> f64 {
        self.makespan_secs / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_rates_aggregate() {
        let mut r = ExperimentResult::default();
        r.services.insert(
            ServiceId(0),
            ServiceMetrics {
                requests: 1000.0,
                violations: 10.0,
                p99_stats: StreamingStats::new(),
            },
        );
        r.services.insert(
            ServiceId(1),
            ServiceMetrics {
                requests: 3000.0,
                violations: 0.0,
                p99_stats: StreamingStats::new(),
            },
        );
        assert!((r.violation_rate(ServiceId(0)) - 0.01).abs() < 1e-12);
        assert!((r.overall_violation_rate() - 10.0 / 4000.0).abs() < 1e-12);
        assert_eq!(r.violation_rate(ServiceId(9)), 0.0);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = ServiceMetrics::default();
        assert_eq!(m.violation_rate(), 0.0);
        let o = OverheadMetrics::default();
        assert_eq!(o.mean_bo_iterations(), 0.0);
        assert_eq!(o.mean_placement_ms(), 0.0);
    }

    #[test]
    fn fault_totals_and_goodput() {
        let mut r = ExperimentResult {
            makespan_secs: 7200.0,
            useful_iterations: 9000.0,
            ..Default::default()
        };
        r.faults.device_failures = 2;
        r.faults.process_crashes = 3;
        assert_eq!(r.faults.total_faults(), 5);
        assert!((r.goodput_iters_per_hour() - 4500.0).abs() < 1e-9);
        r.makespan_secs = 0.0;
        assert_eq!(r.goodput_iters_per_hour(), 0.0);
    }

    #[test]
    fn overhead_summaries() {
        let o = OverheadMetrics {
            bo_iterations: vec![10, 20, 24],
            placement_secs: vec![0.010, 0.020],
        };
        assert_eq!(o.mean_bo_iterations(), 18.0);
        assert_eq!(o.max_bo_iterations(), 24);
        assert!((o.mean_placement_ms() - 15.0).abs() < 1e-9);
        assert!((o.max_placement_ms() - 20.0).abs() < 1e-9);
    }
}
