//! Plain-text table rendering for the experiment binaries.

use crate::metrics::ExperimentResult;

/// A simple fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line.push('\n');
            line
        };
        let sep = {
            let mut line = String::from("+");
            for w in &widths {
                line.push_str(&"-".repeat(w + 2));
                line.push('+');
            }
            line.push('\n');
            line
        };
        out.push_str(&sep);
        out.push_str(&fmt_row(&self.header, &widths));
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out.push_str(&sep);
        out
    }
}

/// Renders the failure-experiment table: per run, the injected fault
/// mix and the recovery outcome (violations, goodput, lost work).
/// `labels` annotates each result (e.g. the fault rate it ran at).
pub fn fault_table(labels: &[String], results: &[ExperimentResult]) -> Table {
    assert_eq!(labels.len(), results.len(), "one label per result");
    let mut t = Table::new(&[
        "run",
        "system",
        "faults",
        "slo viol",
        "goodput it/h",
        "lost iters",
        "dropped req",
        "rerouted req",
        "downtime",
    ]);
    for (label, r) in labels.iter().zip(results) {
        t.row(vec![
            label.clone(),
            r.system.clone(),
            r.faults.total_faults().to_string(),
            pct(r.overall_violation_rate()),
            format!("{:.0}", r.goodput_iters_per_hour()),
            format!("{:.0}", r.faults.lost_iterations),
            format!("{:.0}", r.faults.dropped_requests),
            format!("{:.0}", r.faults.rerouted_requests),
            dur(r.faults.device_down_secs),
        ]);
    }
    t
}

/// Renders the correlated-failure table (Fig. 20): per run, the
/// blast-radius outcome — total-outage windows (no live replica left),
/// the subset triggered by correlated node/rack events, time spent in
/// outage, and the checkpoint write overhead — next to the headline
/// rates.
pub fn outage_table(labels: &[String], results: &[ExperimentResult]) -> Table {
    assert_eq!(labels.len(), results.len(), "one label per result");
    let mut t = Table::new(&[
        "run",
        "system",
        "faults",
        "slo viol",
        "goodput it/h",
        "outages",
        "corr",
        "outage time",
        "ckpt writes",
        "ckpt time",
    ]);
    for (label, r) in labels.iter().zip(results) {
        t.row(vec![
            label.clone(),
            r.system.clone(),
            r.faults.total_faults().to_string(),
            pct(r.overall_violation_rate()),
            format!("{:.0}", r.goodput_iters_per_hour()),
            r.faults.service_outages.to_string(),
            r.faults.correlated_outages.to_string(),
            dur(r.faults.service_outage_secs),
            r.faults.checkpoint_writes.to_string(),
            dur(r.faults.checkpoint_write_secs),
        ]);
    }
    t
}

/// Renders the warm-standby table (Fig. 21): per run, the pool's cost
/// (reserved GPU%-seconds held idle-or-active) next to its benefit
/// (violation rate, bounded failover-latency p99, outage time, traffic
/// the promoted standbys carried).
pub fn standby_table(labels: &[String], results: &[ExperimentResult]) -> Table {
    assert_eq!(labels.len(), results.len(), "one label per result");
    let mut t = Table::new(&[
        "run",
        "system",
        "slots",
        "slo viol",
        "failover p99",
        "outage time",
        "promotions",
        "standby req",
        "reserved GPU%-s",
        "goodput it/h",
    ]);
    for (label, r) in labels.iter().zip(results) {
        t.row(vec![
            label.clone(),
            r.system.clone(),
            r.faults.standby_slots.to_string(),
            pct(r.overall_violation_rate()),
            dur(r.faults.failover_latency_p99()),
            dur(r.faults.service_outage_secs),
            r.faults.standby_promotions.to_string(),
            format!("{:.0}", r.faults.standby_served_requests),
            format!("{:.0}", r.faults.standby_reserved_gpu_secs),
            format!("{:.0}", r.goodput_iters_per_hour()),
        ]);
    }
    t
}

/// Formats a ratio like `2.27x`.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats seconds as adaptive hours/minutes/seconds.
pub fn dur(secs: f64) -> String {
    if secs >= 3600.0 {
        format!("{:.2}h", secs / 3600.0)
    } else if secs >= 60.0 {
        format!("{:.1}min", secs / 60.0)
    } else {
        format!("{secs:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 12345 |"));
        assert!(s.starts_with('+'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fault_table_renders_one_row_per_result() {
        let mut r = ExperimentResult {
            system: "Mudi".into(),
            makespan_secs: 3600.0,
            useful_iterations: 1000.0,
            ..Default::default()
        };
        r.faults.device_failures = 1;
        let t = fault_table(&["rate 1x".to_string()], &[r]);
        let s = t.render();
        assert!(s.contains("rate 1x"));
        assert!(s.contains("Mudi"));
        assert!(s.contains("1000"));
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(4.54, 2.0), "2.27x");
        assert_eq!(ratio(1.0, 0.0), "n/a");
        assert_eq!(pct(0.0123), "1.23%");
        assert_eq!(dur(7200.0), "2.00h");
        assert_eq!(dur(90.0), "1.5min");
        assert_eq!(dur(5.0), "5.0s");
    }
}
