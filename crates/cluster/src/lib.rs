//! End-to-end GPU-cluster simulation for the Mudi evaluation.
//!
//! This crate drives everything §7 measures: a discrete-event cluster
//! of [`gpu_sim`] devices, each hosting one inference replica and up to
//! three training tasks, multiplexed by one of the systems under test:
//!
//! * **Mudi** — the full system from the [`mudi`] crate (plus the
//!   ablation variants of Fig. 13 and Mudi-more of Fig. 17);
//! * **GSLICE** — feedback-driven per-device partitioning, no
//!   cluster-wide interference awareness;
//! * **gpulets** — solo-profile-based virtual-GPU sizing with a fixed
//!   interference buffer;
//! * **MuxFlow** — pre-profiled pair matching that cannot adapt to
//!   unobserved tasks;
//! * **Random** and **Optimal** (exhaustive oracle) bounds.
//!
//! The engine is event-driven with *analytic accrual*: between state
//! changes (task arrivals/completions, QPS segments, retunes) each
//! device's SLO-violation fraction and training progress are integrated
//! in closed form from the ground-truth model, exactly as the paper's
//! own 1000-GPU simulator replays fitted performance functions (§7.1).

#![forbid(unsafe_code)]

pub mod engine;
pub mod experiments;
pub mod job;
pub mod metrics;
pub mod report;
pub mod systems;

pub use engine::{ClusterConfig, ClusterEngine, ClusterScale};
pub use job::{JobId, TrainingJob};
pub use metrics::{ExperimentResult, FaultMetrics, ServiceMetrics};
pub use systems::SystemKind;
