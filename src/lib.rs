//! Umbrella crate hosting the repository-level examples and integration tests.
//!
//! The actual functionality lives in the workspace crates: [`simcore`],
//! [`modeling`], [`workloads`], [`gpu_sim`], [`mudi`], and [`cluster`].
pub use cluster;
pub use gpu_sim;
pub use modeling;
pub use mudi;
pub use simcore;
pub use workloads;
