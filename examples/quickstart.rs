//! Quickstart: profile offline, train the interference predictor, and
//! tune one GPU that serves BERT inference next to a VGG16 training
//! task.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use mudi::{InterferencePredictor, LatencyProfiler, MudiConfig, Tuner};
use simcore::SimRng;
use workloads::{ColoWorkload, GroundTruth, UnknownModel, Zoo};

fn main() -> Result<(), UnknownModel> {
    // 1. The workload catalogue (Tab. 1 + Tab. 3 of the paper) and the
    //    simulated hardware it runs on.
    let gt = GroundTruth::new(Zoo::standard(), 42);
    let mut rng = SimRng::seed(1);

    // 2. Offline: profile the latency curves of every inference service
    //    co-located with the first five training-task types, and train
    //    the architecture-based interference predictor (§4).
    let config = MudiConfig::default();
    let profiler = LatencyProfiler::new(config.clone());
    println!("profiling offline (first five task types)...");
    let db = profiler.build_database(&gt, &gt.zoo().profiled_task_ids(), &mut rng);
    println!(
        "  {} piece-wise curves fitted from {} latency observations",
        db.len(),
        db.total_observations()
    );
    let predictor = InterferencePredictor::new(db, &mut rng).expect("profiling succeeded");

    // 3. Online: a VGG16 training task lands on the BERT replica's GPU.
    //    The Tuner finds the batching size and GPU% that maximize
    //    training speed while holding BERT's 330 ms SLO at 240 QPS.
    let svc = gt.zoo().require_service("BERT")?;
    let task = gt.zoo().require_task("VGG16")?;
    let qps = 240.0;
    let tuner = Tuner::new(config);
    let outcome = tuner.tune(
        &predictor,
        svc.id,
        svc.slo_secs(),
        qps,
        0.0,
        &task.arch,
        // The Training Agent's feedback: observed mini-batch times.
        {
            let mut iter_rng = rng.fork("iteration-samples");
            let gt = &gt;
            move |batch, frac| {
                let colo = [ColoWorkload::inference(svc.id, batch, frac)];
                gt.sample_training_iteration(task.id, (1.0 - frac).max(0.05), &colo, &mut iter_rng)
            }
        },
        // The Service Agent's feedback: observed tail latency.
        |batch, frac| {
            let colo = [ColoWorkload::training(task.id, (1.0f64 - frac).max(0.01))];
            gt.p99_inference_latency(svc.id, batch, frac, &colo)
        },
        &mut rng,
    );

    println!("\ntuned configuration for BERT @ {qps} QPS + VGG16 training:");
    println!("  inference batch      : {}", outcome.batch);
    println!(
        "  inference GPU share  : {:.0}%",
        outcome.gpu_fraction * 100.0
    );
    println!(
        "  training GPU share   : {:.0}%",
        (1.0 - outcome.gpu_fraction) * 100.0
    );
    println!("  GP-LCB iterations    : {}", outcome.bo_iterations);
    println!("  SLO feasible         : {}", outcome.feasible);

    // 4. Verify against the (hidden) ground truth.
    let colo = [ColoWorkload::training(task.id, 1.0 - outcome.gpu_fraction)];
    let p99 = gt.p99_inference_latency(svc.id, outcome.batch, outcome.gpu_fraction, &colo);
    let fill = outcome.batch as f64 / qps;
    println!("\nverification against ground truth:");
    println!("  measured P99 batch latency : {:.1} ms", p99 * 1e3);
    println!(
        "  worst-case request latency : {:.1} ms (fill {:.1} ms + P99)",
        (fill + p99) * 1e3,
        fill * 1e3
    );
    println!(
        "  SLO                        : {:.0} ms",
        svc.slo.as_millis()
    );
    assert!(
        fill + p99 <= svc.slo_secs(),
        "tuned configuration violates the SLO"
    );
    println!("  => SLO holds with the training task running alongside");
    Ok(())
}
