//! Domain scenario: profile an unseen fine-tuning workload's
//! interference footprint before it ever co-locates with production
//! inference (§4's offline/online split).
//!
//! A GPT2 text-generation service is in production. A new BERT
//! fine-tuning job arrives — a task type that was *never profiled*.
//! Mudi extracts its layer counts, predicts the co-located latency
//! curve from the architecture, and we compare the prediction with
//! what the hardware (ground truth) actually does.
//!
//! ```bash
//! cargo run --release --example interference_profiling
//! ```

use mudi::{InterferencePredictor, LatencyProfiler, MudiConfig};
use simcore::SimRng;
use workloads::{ColoWorkload, GroundTruth, UnknownModel, Zoo};

fn main() -> Result<(), UnknownModel> {
    let gt = GroundTruth::new(Zoo::standard(), 42);
    let mut rng = SimRng::seed(2);
    let config = MudiConfig::default();
    let profiler = LatencyProfiler::new(config);

    // Offline corpus: only the first five task types of Tab. 3.
    println!("offline profiling (VGG16, SqueezeNet, ResNet50, NCF, LSTM)...");
    let db = profiler.build_database(&gt, &gt.zoo().profiled_task_ids(), &mut rng);
    let predictor = InterferencePredictor::new(db, &mut rng).expect("profiles available");

    // The unseen arrival: BERT fine-tuning (encoder blocks — a layer
    // type absent from every profiled task).
    let svc = gt.zoo().require_service("GPT2")?;
    let task = gt.zoo().require_task("BERT-train")?;
    println!(
        "\nincoming unobserved task: {} — layers: {}",
        task.name, task.arch
    );

    println!("\npredicted vs measured latency curve for GPT2 (batch 64) under co-location:");
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "GPU%", "predicted(ms)", "measured(ms)", "err"
    );
    let curve = predictor
        .curve_for_arch(svc.id, &task.arch, 64)
        .expect("GPT2 was profiled");
    let mut worst: f64 = 0.0;
    for pct in 2..=9 {
        let frac = pct as f64 * 0.1;
        let colo = [ColoWorkload::training(task.id, (1.0f64 - frac).max(0.01))];
        let measured = gt.p99_inference_latency(svc.id, 64, frac, &colo);
        let predicted = curve.eval(frac);
        let err = (predicted - measured).abs() / measured;
        worst = worst.max(err);
        println!(
            "{:>5.0}% {:>14.1} {:>14.1} {:>7.1}%",
            frac * 100.0,
            predicted * 1e3,
            measured * 1e3,
            err * 100.0
        );
    }
    println!(
        "\nknee predicted at GPU% = {:.0}% (latency {:.1} ms there)",
        curve.x0 * 100.0,
        curve.y0 * 1e3
    );
    println!("worst point error: {:.1}%", worst * 100.0);
    println!(
        "\n=> the architecture-based predictor generalized to a layer type it never saw;\n\
           the knee region (where the Tuner operates) is accurate to within a few\n\
           percent, while the flat tail keeps larger errors — which is exactly why\n\
           Mudi verifies candidate configurations against live measurements before\n\
           committing them (see mudi::tuner)."
    );
    Ok(())
}
