//! Domain scenario: a 12-GPU serving cluster absorbs a stream of
//! training jobs under three multiplexing policies — Mudi, GSLICE, and
//! Random — and reports who held the SLOs and who trained fastest.
//!
//! This is a reduced-scale version of the paper's end-to-end evaluation
//! (§7.2); the `bench` crate's `fig08`/`fig09` binaries run the full
//! thing.
//!
//! ```bash
//! cargo run --release --example cluster_scheduling
//! ```

use cluster::engine::{ClusterConfig, ClusterEngine};
use cluster::report::{pct, Table};
use cluster::systems::SystemKind;
use workloads::Zoo;

fn main() {
    let zoo = Zoo::standard();
    println!(
        "12 GPUs, {} inference services (one replica per GPU, round-robin), 48 training jobs\n",
        zoo.services().len()
    );

    let mut table = Table::new(&[
        "system",
        "SLO violations",
        "mean CT",
        "mean wait",
        "makespan",
        "mean SM util",
    ]);
    for system in [SystemKind::Random, SystemKind::Gslice, SystemKind::Mudi] {
        let mut cfg = ClusterConfig::physical(system, 42);
        cfg.jobs = 48;
        // Scale iteration counts down so the example finishes in
        // seconds; relative comparisons are unaffected.
        let result = ClusterEngine::new(cfg).run_scaled(0.01);
        table.row(vec![
            system.name().to_string(),
            pct(result.overall_violation_rate()),
            format!("{:.1} min", result.ct.mean() / 60.0),
            format!("{:.1} s", result.waiting.mean()),
            format!("{:.2} h", result.makespan_hours()),
            format!("{:.0}%", result.mean_sm_util * 100.0),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nExpected shape (paper §7.2): Mudi holds the lowest violation rate while\n\
         finishing training jobs sooner and driving SM utilization higher than the\n\
         interference-blind baselines."
    );
}
