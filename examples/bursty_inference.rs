//! Domain scenario: a face-recognition-style image service (ResNet50)
//! rides out a 3× traffic burst while a YOLOv5 object-detection model
//! trains on the same A100 — the paper's Fig. 16 situation.
//!
//! Shows Mudi's adaptive batching, dynamic resource scaling, and
//! unified-memory swapping reacting to the burst in real time.
//!
//! ```bash
//! cargo run --release --example bursty_inference
//! ```

use cluster::experiments::bursty_case_study;
use cluster::systems::SystemKind;
use workloads::BurstSchedule;

fn main() {
    println!("ResNet50 inference + YOLOv5 training on one GPU; 3x burst at t=100s..200s\n");
    let cs = bursty_case_study(
        SystemKind::Mudi,
        "ResNet50",
        "YOLOv5",
        BurstSchedule::fig16_burst(),
        300.0,
        42,
    );

    println!(
        "{:>6} {:>6} {:>6} {:>6} {:>10} {:>8}",
        "t(s)", "QPS", "batch", "GPU%", "swapped", "P(viol)"
    );
    let mut last = (0u32, 0.0f64);
    for p in &cs.points {
        let config = (p.batch, p.gpu_fraction);
        // Print on configuration changes plus a sparse heartbeat.
        if config != last || (p.t as u64).is_multiple_of(50) {
            println!(
                "{:>6.0} {:>6.0} {:>6} {:>5.0}% {:>8.1}GB {:>8.4}",
                p.t,
                p.qps,
                p.batch,
                p.gpu_fraction * 100.0,
                p.swapped_gb,
                p.violation_prob
            );
            last = config;
        }
    }

    println!("\nsummary over the 300 s window:");
    println!(
        "  SLO violation rate          : {:.2}%",
        cs.violation_rate * 100.0
    );
    println!(
        "  time with memory swapped    : {:.1}%",
        cs.swap_time_fraction * 100.0
    );
    println!(
        "  mean swap transfer          : {:.1} ms",
        cs.mean_swap_transfer_secs * 1e3
    );

    // The whole point: the burst does not take the service down, and
    // training never OOMs — its memory simply moves to the host.
    assert!(cs.violation_rate < 0.05, "the burst overwhelmed the tuner");
    println!("\n=> burst absorbed: batching and GPU% retuned, training memory swapped, SLO held");
}
