//! Guard against the monolith regrowing: no Rust source file under any
//! crate's `src/` may exceed 1,200 lines. `engine.rs` reached 2,363
//! lines before it was split into the staged `engine/` kernel; this
//! test (and the matching CI step) keeps every module within reviewable
//! bounds.

use std::fs;
use std::path::{Path, PathBuf};

const MAX_LINES: usize = 1_200;

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_source_file_exceeds_max_lines() {
    let crates = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates).expect("crates/ exists") {
        let src = entry.expect("readable crate dir").path().join("src");
        if src.is_dir() {
            rust_sources(&src, &mut files);
        }
    }
    assert!(
        files.len() > 10,
        "suspiciously few source files found ({}): wrong root?",
        files.len()
    );

    let mut oversized: Vec<String> = files
        .iter()
        .filter_map(|p| {
            let lines = fs::read_to_string(p).ok()?.lines().count();
            (lines > MAX_LINES).then(|| format!("{} ({lines} lines)", p.display()))
        })
        .collect();
    oversized.sort();
    assert!(
        oversized.is_empty(),
        "source files over {MAX_LINES} lines — split them into modules:\n  {}",
        oversized.join("\n  ")
    );
}
