//! Cross-crate integration tests: end-to-end cluster runs across the
//! systems under test, checking the invariants the paper's evaluation
//! rests on.

use cluster::engine::{ClusterConfig, ClusterEngine};
use cluster::systems::SystemKind;
use mudi::policy::QueuePolicy;

fn tiny(system: SystemKind, seed: u64, jobs: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::tiny(system, seed);
    cfg.jobs = jobs;
    cfg
}

/// Every system must drain the queue: all submitted jobs complete.
#[test]
fn every_system_completes_all_jobs() {
    for system in [
        SystemKind::Mudi,
        SystemKind::MudiMore,
        SystemKind::MudiClusterOnly,
        SystemKind::MudiDeviceOnly,
        SystemKind::Gslice,
        SystemKind::Gpulets,
        SystemKind::MuxFlow,
        SystemKind::Random,
        SystemKind::Optimal,
    ] {
        let r = ClusterEngine::new(tiny(system, 31, 12)).run_scaled(0.002);
        assert_eq!(
            r.jobs_completed,
            r.jobs_submitted,
            "{} left jobs unfinished",
            system.name()
        );
        assert!(r.makespan_secs > 0.0);
        assert!(r.overall_violation_rate() <= 1.0);
    }
}

/// The headline ordering at reduced scale: Mudi's violation rate is no
/// worse than the heuristic baselines', and it trains faster than
/// GSLICE (Fig. 8/9 shapes).
#[test]
fn mudi_beats_baselines_on_both_axes() {
    let run = |system| ClusterEngine::new(tiny(system, 71, 24)).run_scaled(0.004);
    let mudi = run(SystemKind::Mudi);
    let gslice = run(SystemKind::Gslice);
    let muxflow = run(SystemKind::MuxFlow);
    assert!(
        mudi.overall_violation_rate() <= muxflow.overall_violation_rate(),
        "Mudi {} vs MuxFlow {}",
        mudi.overall_violation_rate(),
        muxflow.overall_violation_rate()
    );
    assert!(
        mudi.ct.mean() < gslice.ct.mean(),
        "Mudi CT {} vs GSLICE CT {}",
        mudi.ct.mean(),
        gslice.ct.mean()
    );
}

/// Conservation: analytic accrual must never report more violations
/// than requests, per service.
#[test]
fn violations_never_exceed_requests() {
    let r = ClusterEngine::new(tiny(SystemKind::MuxFlow, 5, 16)).run_scaled(0.002);
    for (svc, m) in &r.services {
        assert!(
            m.violations <= m.requests + 1e-6,
            "service {svc:?}: {} violations of {} requests",
            m.violations,
            m.requests
        );
        assert!(m.requests > 0.0, "service {svc:?} saw no traffic");
    }
}

/// Queue policies all drain and produce sensible orders; SJF should not
/// increase mean waiting time relative to FCFS under contention.
#[test]
fn queue_policies_work_end_to_end() {
    let mut results = Vec::new();
    for policy in [
        QueuePolicy::Fcfs,
        QueuePolicy::Sjf,
        QueuePolicy::Fair,
        QueuePolicy::Priority,
    ] {
        let mut cfg = tiny(SystemKind::Mudi, 13, 18);
        cfg.devices = 3; // Force queueing.
        cfg.policy = policy;
        let r = ClusterEngine::new(cfg).run_scaled(0.004);
        assert_eq!(r.jobs_completed, r.jobs_submitted, "{policy:?}");
        results.push((policy, r.waiting.mean(), r.ct.mean()));
    }
    let fcfs_wait = results[0].1;
    let sjf_wait = results[1].1;
    assert!(
        sjf_wait <= fcfs_wait * 1.25,
        "SJF mean wait {sjf_wait} should not blow up vs FCFS {fcfs_wait}"
    );
}

/// Memory safety across the run: Mudi swaps instead of pausing, so its
/// devices may overflow but jobs still finish; transfer accounting is
/// consistent.
#[test]
fn memory_swapping_accounting_is_consistent() {
    let mut cfg = tiny(SystemKind::Mudi, 17, 10);
    cfg.load_multiplier = 2.0; // Pressure the staging pools.
    let r = ClusterEngine::new(cfg).run_scaled(0.002);
    assert_eq!(r.jobs_completed, r.jobs_submitted);
    for frac in r.swap_time_fraction.values() {
        assert!((0.0..=1.0).contains(frac));
    }
    assert!(r.mean_swap_transfer_secs >= 0.0);
}

/// Utilization invariants: means within [0, 1]; Mudi's SM utilization
/// should exceed the empty-cluster floor once training runs.
#[test]
fn utilization_is_bounded_and_nontrivial() {
    let r = ClusterEngine::new(tiny(SystemKind::Mudi, 23, 16)).run_scaled(0.004);
    assert!((0.0..=1.0).contains(&r.mean_sm_util));
    assert!((0.0..=1.0).contains(&r.mean_mem_util));
    assert!(r.mean_sm_util > 0.05, "cluster never did real work");
    for &(_, sm, mem) in &r.util_series {
        assert!((0.0..=1.0).contains(&sm));
        assert!((0.0..=1.0).contains(&mem));
    }
}

/// The burst schedule plumbs through the whole engine.
#[test]
fn burst_schedule_applies_cluster_wide() {
    use workloads::BurstSchedule;
    let mut cfg = tiny(SystemKind::Mudi, 29, 8);
    cfg.burst = Some(BurstSchedule::fig16_burst());
    let r = ClusterEngine::new(cfg).run_scaled(0.002);
    assert_eq!(r.jobs_completed, r.jobs_submitted);
}

/// A rack-scoped blast that swallows *every* replica of one service:
/// failover is enabled but finds no survivor, so the service's traffic
/// must be charged as dropped requests and SLO violations — never
/// silently vanish — and the window must surface in the explicit
/// total-outage accounting with its correlated domain tag.
#[test]
fn rack_blast_with_no_survivors_is_accounted_not_dropped() {
    use resilience::{FaultDomain, FaultEvent, FaultKind, FaultSchedule, RecoveryPolicy};
    use simcore::{SimDuration, SimTime};
    use workloads::Zoo;

    // Flat layout (no fault profile in the config, Random system):
    // device d serves service d % n, so service 0's two replicas sit on
    // devices 0 and n. A hand-built Rack(0) incident kills both at once
    // with one shared repair interval.
    let n = Zoo::standard().services().len();
    let mut cfg = tiny(SystemKind::Random, 53, 24);
    cfg.devices = n + 1;
    let mut engine = ClusterEngine::new(cfg);
    let at = SimTime::from_secs(600.0);
    let repair = SimDuration::from_mins(30.0);
    engine.set_fault_schedule(FaultSchedule::from_events(
        [0usize, n]
            .into_iter()
            .map(|d| FaultEvent {
                at,
                device: d,
                kind: FaultKind::DeviceFailure { repair },
                domain: FaultDomain::Rack(0),
            })
            .collect(),
    ));
    engine.set_recovery_policy(RecoveryPolicy {
        failover_inference: true,
        ..RecoveryPolicy::standard()
    });
    let r = engine.run_scaled(0.002);

    assert_eq!(r.faults.device_failures, 2);
    // The outage is explicit: one total-outage window, tagged with its
    // correlated (rack) domain, open for the shared repair interval.
    assert!(r.faults.service_outages >= 1, "outage window not recorded");
    assert!(
        r.faults.correlated_outages >= 1,
        "rack-domain outage not tagged correlated"
    );
    assert!(
        r.faults.service_outage_secs > 0.0,
        "outage window has no duration"
    );
    assert!(
        r.faults.service_outage_secs <= repair.as_secs() + 1e-6,
        "outage {}s outlived the repair {}s",
        r.faults.service_outage_secs,
        repair.as_secs()
    );
    // Conservation: with every survivor inside the blast radius the
    // traffic is dropped *visibly*, and each dropped request is booked
    // as an SLO violation too.
    assert!(
        r.faults.dropped_requests > 0.0,
        "outage traffic silently vanished"
    );
    let total_viol: f64 = r.services.values().map(|m| m.violations).sum();
    assert!(
        total_viol + 1e-9 >= r.faults.dropped_requests,
        "violations {total_viol} must cover dropped {}",
        r.faults.dropped_requests
    );
}

/// The same no-survivor rack blast with a warm-standby pool: the only
/// thing left serving the service is a standby seeded in another rack
/// (seeding anti-affines standbys away from their service's primaries).
/// The pool must convert the total outage into bounded-latency
/// coverage: a promotion at the shadow-switch cost, traffic served on
/// the reserved slice, and no total-outage window at all.
#[test]
fn rack_blast_survived_only_by_standby_in_another_rack() {
    use gpu_sim::SHADOW_SWITCH_SECS;
    use resilience::{
        FaultDomain, FaultEvent, FaultKind, FaultProfile, FaultSchedule, RecoveryPolicy,
        StandbyPolicy,
    };
    use simcore::{SimDuration, SimTime};
    use workloads::Zoo;

    let n = Zoo::standard().services().len();
    let mut cfg = tiny(SystemKind::Random, 53, 24);
    cfg.devices = n + 1;
    // The pool must ride in on the config's fault profile: seeding
    // happens at engine construction. The generated schedule is then
    // replaced with the hand-built blast.
    let mut profile = FaultProfile::scaled(1.0);
    profile.recovery = RecoveryPolicy {
        failover_inference: true,
        ..RecoveryPolicy::standard()
    };
    profile.recovery.standby = StandbyPolicy::warm(1);
    cfg.faults = Some(profile);
    let mut engine = ClusterEngine::new(cfg);
    // Short repair so both repairs land before the last job finishes.
    let at = SimTime::from_secs(600.0);
    let repair = SimDuration::from_mins(6.0);
    engine.set_fault_schedule(FaultSchedule::from_events(
        [0usize, n]
            .into_iter()
            .map(|d| FaultEvent {
                at,
                device: d,
                kind: FaultKind::DeviceFailure { repair },
                domain: FaultDomain::Rack(0),
            })
            .collect(),
    ));
    let r = engine.run_scaled(0.002);

    assert_eq!(r.faults.device_failures, 2);
    assert!(r.faults.standby_slots >= 1, "pool was never seeded");
    assert!(
        r.faults.standby_promotions >= 1,
        "no standby promoted despite a survivor-free blast"
    );
    assert!(
        r.faults.standby_served_requests > 0.0,
        "promoted standby served no traffic"
    );
    // The hand-off is bounded at the shadow-switch latency — orders of
    // magnitude under the repair interval the pool-0 path pays.
    assert!(r.faults.failover_latency_secs.contains(&SHADOW_SWITCH_SECS));
    assert!(
        r.faults.failover_latency_p99() <= SHADOW_SWITCH_SECS + 1e-9,
        "failover p99 {}s not bounded by the promote latency",
        r.faults.failover_latency_p99()
    );
    // Standby coverage suppresses the total-outage window entirely.
    assert_eq!(
        r.faults.service_outages, 0,
        "outage window recorded despite standby coverage"
    );
    assert_eq!(r.faults.service_outage_secs, 0.0);
    // The run's canonical text carries the standby ledger (and so the
    // goldens that include pools will too).
    assert!(r.canonical_text().contains("standby:"));
}
