//! Steady-state stepping must not allocate.
//!
//! The staged kernel is dense-indexed: per-service metrics live in a
//! [`cluster::metrics::ServiceTable`] keyed by `ServiceId`, per-device
//! state in plain vectors, and every per-step scratch buffer is pooled
//! inside the engine state. The payoff this file proves: once a
//! session is *warm*, stepping it — QPS segment changes, accruals,
//! tuner reconfigurations, training completions — performs **zero**
//! heap allocations, across the committed `perf_kernel` shapes. That
//! includes the LLM-mix shape: generative decode accrual is analytic
//! (steady-state running batch, closed-form ITL tail), so the
//! token-SLO path adds no per-event allocations either.
//!
//! **Warm-up prefix.** A documented, bounded prefix of each run is
//! excluded from the assertion window. Warm-up covers one-time,
//! capacity-style allocations only: predictor curve memos and device
//! latency-profile memos populating on first use, `ServiceTable` /
//! event-queue / scratch-vector growth to their steady capacities, and
//! the first wave of job placements. Everything after the prefix is
//! the kernel's steady state and must be allocation-free.
//!
//! Asserted with a counting global allocator. The counter is
//! process-global, so the tests in this file serialize on a mutex and
//! only measure while holding it. Set `MUDI_ALLOC_TRACE=1` to print a
//! backtrace for every allocation inside a measured window when
//! hunting a regression.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use cluster::engine::{ClusterConfig, ClusterSession};
use cluster::systems::SystemKind;
use simcore::SimTime;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
/// Window marker: when set, `MUDI_ALLOC_TRACE=1` prints a backtrace
/// per allocation (re-entrancy guarded, since capturing allocates).
static ARMED: AtomicBool = AtomicBool::new(false);
static TRACING: AtomicBool = AtomicBool::new(false);
/// Latched from `MUDI_ALLOC_TRACE` before arming; the allocator itself
/// must never call into env machinery (it allocates).
static TRACE_ON: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        if ARMED.load(Ordering::Relaxed)
            && TRACE_ON.load(Ordering::Relaxed)
            && !TRACING.swap(true, Ordering::Relaxed)
        {
            eprintln!(
                "[alloc {} bytes]\n{}",
                layout.size(),
                std::backtrace::Backtrace::force_capture()
            );
            TRACING.store(false, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        if ARMED.load(Ordering::Relaxed)
            && TRACE_ON.load(Ordering::Relaxed)
            && !TRACING.swap(true, Ordering::Relaxed)
        {
            eprintln!(
                "[realloc {} -> {new_size} bytes]\n{}",
                layout.size(),
                std::backtrace::Backtrace::force_capture()
            );
            TRACING.store(false, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Serializes the tests in this file: the allocation counter is
/// process-global and a sibling test allocating concurrently would
/// race the measured delta.
static LOCK: Mutex<()> = Mutex::new(());

const DAY: f64 = 24.0 * 3600.0;

/// The same shapes `perf_kernel` pins, restated here because the
/// bench binary is not a library: (name, config, warm-up horizon,
/// measure horizon, step increment).
fn shapes() -> Vec<(&'static str, ClusterConfig, f64, f64, f64)> {
    vec![
        (
            "batch-tiny-mudi-5day",
            ClusterConfig::tiny(SystemKind::Mudi, 7),
            2.0 * DAY,
            5.0 * DAY,
            3.0 * DAY,
        ),
        (
            "batch-physical-mudi-5day",
            ClusterConfig::physical(SystemKind::Mudi, 7),
            2.0 * DAY,
            5.0 * DAY,
            3.0 * DAY,
        ),
        (
            "session-tiny-1day-5min-steps",
            ClusterConfig::tiny(SystemKind::Mudi, 7),
            0.25 * DAY,
            DAY,
            300.0,
        ),
        (
            "llm-mix-physical-mudi-5day",
            {
                let mut c = ClusterConfig::physical(SystemKind::Mudi, 7);
                c.llm_services = true;
                c
            },
            2.0 * DAY,
            5.0 * DAY,
            3.0 * DAY,
        ),
    ]
}

fn step_to(session: &mut ClusterSession, from: f64, to: f64, step: f64) -> u64 {
    let mut events = 0;
    let mut t = from;
    while t < to {
        t = (t + step).min(to);
        events += session.step_until(SimTime::from_secs(t));
    }
    events
}

#[test]
fn steady_state_stepping_allocates_nothing() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    TRACE_ON.store(
        std::env::var_os("MUDI_ALLOC_TRACE").is_some_and(|v| v == "1"),
        Ordering::SeqCst,
    );

    // Sanity-check the counter before trusting any zero below.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let v: Vec<u64> = (0..64).collect();
    assert!(
        ALLOCATIONS.load(Ordering::SeqCst) > before && v.len() == 64,
        "counting allocator failed to observe a plain Vec allocation"
    );

    for (shape, config, warm, horizon, step) in shapes() {
        // Construction and the warm-up prefix may allocate freely.
        let mut session = ClusterSession::new_scaled(config, 0.01);
        let warm_events = step_to(&mut session, 0.0, warm, step);

        ARMED.store(true, Ordering::SeqCst);
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let events = step_to(&mut session, warm, horizon, step);
        let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
        ARMED.store(false, Ordering::SeqCst);

        assert!(
            events > 0,
            "{shape}: measured window fired no events (warm-up fired {warm_events})"
        );
        // These shapes resolve to one lane / one worker by default and
        // must then be strictly allocation-free. When env overrides
        // (`MUDI_SHARDS` / `MUDI_THREADS`, as in the CI grid re-runs)
        // force the parallel lane phase, each epoch window's fork-join
        // performs bounded setup — the same O(epoch windows), never
        // O(events), contract `sharded_stepping_allocation_contract`
        // pins below.
        let profile = session.phase_profile();
        if profile.workers > 1 && profile.lanes > 1 {
            let epochs = ((horizon - warm) / 60.0).ceil() as usize + 8;
            let bound = epochs * 64;
            assert!(
                delta <= bound,
                "{shape}: parallel stepping allocated {delta} times over \
                 {events} events ({epochs} epochs x budget 64 = {bound}); \
                 allocations must scale with epochs, not events"
            );
        } else {
            assert_eq!(
                delta, 0,
                "{shape}: warm steady-state stepping allocated {delta} times \
                 over {events} events (set MUDI_ALLOC_TRACE=1 for backtraces)"
            );
        }
    }
}

/// Sharded stepping's allocation contract.
///
/// With a single worker the rack-sharded engine collapses to the plain
/// merge-pop loop — no speculation phase, no barriers — and must stay
/// exactly as allocation-free as the unsharded shapes above. With
/// multiple workers (CI re-runs this file under `MUDI_THREADS=2`) each
/// epoch window's speculation barrier performs a bounded, documented
/// amount of setup: one shard-work vector cut along the shard map plus
/// the scoped pool's claim slots and worker-thread spawns. That makes
/// steady-state allocations **O(epoch windows), never O(events)** —
/// this test pins the per-epoch budget so a per-event allocation
/// sneaking into the sharded path trips immediately (thousands of
/// events fire per 60-second epoch in these shapes).
#[test]
fn sharded_stepping_allocation_contract() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    TRACE_ON.store(
        std::env::var_os("MUDI_ALLOC_TRACE").is_some_and(|v| v == "1"),
        Ordering::SeqCst,
    );

    let mut config = ClusterConfig::tiny(SystemKind::Mudi, 7);
    config.shards = 2;
    let (warm, horizon, step) = (2.0 * DAY, 5.0 * DAY, 3.0 * DAY);
    let mut session = ClusterSession::new_scaled(config, 0.01);
    let warm_events = step_to(&mut session, 0.0, warm, step);

    ARMED.store(true, Ordering::SeqCst);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let events = step_to(&mut session, warm, horizon, step);
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    ARMED.store(false, Ordering::SeqCst);

    assert!(
        events > 0,
        "sharded window fired no events (warm-up fired {warm_events})"
    );
    if simcore::max_workers() <= 1 {
        assert_eq!(
            delta, 0,
            "serial sharded stepping allocated {delta} times over {events} \
             events (set MUDI_ALLOC_TRACE=1 for backtraces)"
        );
    } else {
        // 60-second epochs tile the measured window; step_until calls
        // can each open one extra partial window.
        let epochs = ((horizon - warm) / 60.0).ceil() as usize + 8;
        // Documented per-epoch barrier budget: the shard-work vector,
        // the pool's claim-slot vector, and a few allocations per
        // spawned worker thread.
        const PER_EPOCH_ALLOC_BUDGET: usize = 64;
        let bound = epochs * PER_EPOCH_ALLOC_BUDGET;
        assert!(
            delta <= bound,
            "sharded stepping allocated {delta} times over {events} events \
             ({epochs} epochs x budget {PER_EPOCH_ALLOC_BUDGET} = {bound}); \
             allocations must scale with epochs, not events"
        );
    }
}

/// Dense-id regression guard: the kernel's dense service table must
/// round-trip to exactly the key set the old `HashMap`-keyed report
/// carried — a contiguous `0..k` block of service ids, one entry per
/// touched service, no gaps and no phantom keys.
#[test]
fn dense_service_ids_round_trip_to_key_set() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());

    let mut session = ClusterSession::new_scaled(ClusterConfig::tiny(SystemKind::Mudi, 7), 0.01);
    step_to(&mut session, 0.0, 0.5 * DAY, 0.5 * DAY);
    let result = session.finish();

    let mut ids: Vec<usize> = result.services.keys().map(|s| s.0).collect();
    ids.sort_unstable();
    assert!(!ids.is_empty(), "tiny run reported no services");
    assert_eq!(
        ids,
        (0..ids.len()).collect::<Vec<_>>(),
        "dense service ids must form a contiguous 0..k block, got {ids:?}"
    );
}
