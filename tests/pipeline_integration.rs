//! Cross-crate integration tests: the full Mudi pipeline from offline
//! profiling through online placement and tuning, exercised end to end
//! against the ground-truth substrate.

use mudi::{
    DeviceCandidate, DeviceSelector, InterferencePredictor, LatencyProfiler, MudiConfig, Tuner,
};
use simcore::SimRng;
use workloads::{ColoWorkload, GroundTruth, Zoo};

fn build_predictor(seed: u64) -> (GroundTruth, InterferencePredictor) {
    let gt = GroundTruth::new(Zoo::standard(), seed);
    let profiler = LatencyProfiler::new(MudiConfig::default());
    let mut rng = SimRng::seed(seed);
    let db = profiler.build_database(&gt, &gt.zoo().profiled_task_ids(), &mut rng);
    let p = InterferencePredictor::new(db, &mut rng).expect("profiling succeeds");
    (gt, p)
}

/// The headline pipeline: profile → predict → place → tune → verify
/// that the tuned configuration really holds the SLO on the hidden
/// hardware model, for every unobserved task type.
#[test]
fn profile_predict_place_tune_holds_slo_for_unobserved_tasks() {
    let (gt, predictor) = build_predictor(1234);
    let config = MudiConfig::default();
    let selector = DeviceSelector::new(config.clone());
    let tuner = Tuner::new(config);
    let qps = 220.0;

    for &task in &gt.zoo().unobserved_task_ids() {
        // One candidate device per service type.
        let candidates: Vec<DeviceCandidate> = gt
            .zoo()
            .services()
            .iter()
            .enumerate()
            .map(|(i, s)| DeviceCandidate {
                device: i,
                service: s.id,
                existing_tasks: vec![],
                mem_headroom_gb: 38.0 - gt.training_memory_gb(task),
                reliability: mudi::ReliabilityPrior::default(),
                domain_training_load: 0.0,
            })
            .collect();
        let decision = selector
            .select(&gt, &predictor, task, &candidates)
            .expect("placement succeeds");
        let svc = &gt.zoo().services()[decision.device];
        let arch = gt.zoo().task(task).arch;

        let mut rng = SimRng::seed(99);
        let outcome = tuner.tune(
            &predictor,
            svc.id,
            svc.slo_secs(),
            qps,
            0.0,
            &arch,
            {
                let gt = &gt;
                let mut iter_rng = SimRng::seed(7);
                move |batch, frac| {
                    let colo = [ColoWorkload::inference(svc.id, batch, frac)];
                    gt.sample_training_iteration(task, (1.0 - frac).max(0.05), &colo, &mut iter_rng)
                }
            },
            {
                let gt = &gt;
                move |batch, frac| {
                    let colo = [ColoWorkload::training(task, (1.0f64 - frac).max(0.01))];
                    gt.p99_inference_latency(svc.id, batch, frac, &colo)
                }
            },
            &mut rng,
        );
        assert!(
            outcome.feasible,
            "task {task:?} should be tunable at {qps} QPS"
        );

        // Verify end-to-end against the hidden model.
        let colo = [ColoWorkload::training(task, 1.0 - outcome.gpu_fraction)];
        let p99 = gt.p99_inference_latency(svc.id, outcome.batch, outcome.gpu_fraction, &colo);
        let fill = outcome.batch as f64 / qps;
        assert!(
            fill + p99 <= svc.slo_secs() * 1.02,
            "task {task:?} on {}: e2e {:.1}ms vs SLO {:.0}ms",
            svc.name,
            (fill + p99) * 1e3,
            svc.slo.as_millis()
        );
        // Training must keep a real share of the GPU.
        assert!(
            outcome.gpu_fraction <= 0.9,
            "training squeezed out for {task:?}"
        );
    }
}

/// The selector must send heavy conv workloads away from the services
/// most sensitive to SM pressure, i.e. its ranking must correlate with
/// the true iteration-time ranking.
#[test]
fn selector_ranking_correlates_with_ground_truth() {
    let (gt, predictor) = build_predictor(55);
    let selector = DeviceSelector::new(MudiConfig::default());
    let heavy = gt.zoo().task_by_name("YOLOv5").expect("in zoo").id;

    let candidates: Vec<DeviceCandidate> = gt
        .zoo()
        .services()
        .iter()
        .enumerate()
        .map(|(i, s)| DeviceCandidate {
            device: i,
            service: s.id,
            existing_tasks: vec![],
            mem_headroom_gb: 10.0,
            reliability: mudi::ReliabilityPrior::default(),
            domain_training_load: 0.0,
        })
        .collect();
    let decision = selector
        .select(&gt, &predictor, heavy, &candidates)
        .expect("placement succeeds");
    // The chosen device's true interference on the inference side must
    // be no worse than the cluster median.
    let true_cost = |svc_idx: usize| {
        let svc = &gt.zoo().services()[svc_idx];
        let colo = [ColoWorkload::training(heavy, 0.5)];
        let shared = gt.inference_latency(svc.id, 64, 0.5, &colo);
        let solo = gt.inference_latency(svc.id, 64, 0.5, &[]);
        shared / solo
    };
    let mut costs: Vec<f64> = (0..candidates.len()).map(true_cost).collect();
    let chosen_cost = true_cost(decision.device);
    costs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = costs[costs.len() / 2];
    assert!(
        chosen_cost <= median * 1.05,
        "selector chose a worse-than-median device: {chosen_cost} vs median {median}"
    );
}

/// Incremental updates must not make predictions of already-covered
/// co-locations wildly worse (no catastrophic forgetting).
#[test]
fn incremental_update_preserves_known_tasks() {
    let (gt, mut predictor) = build_predictor(77);
    let svc = gt.zoo().service_by_name("BERT").expect("in zoo").id;
    let known = gt.zoo().profiled_task_ids()[0];
    let arch = gt.zoo().task(known).arch;
    let before = predictor
        .curve_for_arch(svc, &arch, 64)
        .expect("covered service");

    // Fold in profiles of one unobserved task.
    let profiler = LatencyProfiler::new(MudiConfig::default());
    let mut rng = SimRng::seed(3);
    let mut extra = mudi::ProfileDatabase::new();
    let unseen = gt.zoo().unobserved_task_ids()[0];
    for &batch in &[16u32, 64, 256] {
        if let Some(rec) = profiler.profile(&gt, svc, batch, &[unseen], &mut rng) {
            extra.insert(rec);
        }
    }
    predictor.incorporate(extra, &mut rng);

    let after = predictor
        .curve_for_arch(svc, &arch, 64)
        .expect("still covered");
    let drift = (after.y0 - before.y0).abs() / before.y0;
    assert!(drift < 0.5, "catastrophic forgetting: y0 drifted {drift}");
}

/// Determinism across the whole stack: the same seed gives bit-equal
/// predictions.
#[test]
fn pipeline_is_deterministic() {
    let (gt_a, pred_a) = build_predictor(2024);
    let (gt_b, pred_b) = build_predictor(2024);
    let svc = gt_a.zoo().services()[3].id;
    for task in gt_b.zoo().tasks() {
        let a = pred_a
            .curve_for_arch(svc, &task.arch, 128)
            .expect("covered");
        let b = pred_b
            .curve_for_arch(svc, &task.arch, 128)
            .expect("covered");
        assert_eq!(a, b, "prediction differs for {}", task.name);
    }
}
