//! Property tests for the scoped worker pool (`simcore::pool`), via the
//! in-tree proptest shim: `scoped_map` must behave exactly like a
//! serial `map` for every (item count × worker count) shape — items >
//! workers, workers > items, and empty input all included — and a
//! panicking item must surface its index to the caller.

use proptest::prelude::*;
use simcore::pool::{max_workers, scoped_map_workers};

proptest! {
    /// Output preserves input order and length for arbitrary shapes.
    #[test]
    fn preserves_order_and_length(n in 0usize..48, workers in 1usize..12) {
        // Items are position-dependent values, so any reordering or
        // loss would change the output.
        let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9) ^ 0xA5).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x.rotate_left(7) ^ 0x5A).collect();
        let got = scoped_map_workers(items, workers, |x| x.rotate_left(7) ^ 0x5A);
        prop_assert_eq!(got.len(), n);
        prop_assert_eq!(got, expect);
    }

    /// Worker count never changes the result, only the schedule —
    /// compare two arbitrary worker counts against each other.
    #[test]
    fn worker_count_is_invisible(n in 1usize..32, w1 in 1usize..10, w2 in 1usize..10) {
        let items: Vec<u64> = (0..n as u64).collect();
        let a = scoped_map_workers(items.clone(), w1, |x| x * x + 1);
        let b = scoped_map_workers(items, w2, |x| x * x + 1);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn empty_input_is_fine_at_any_worker_count() {
    for workers in [1, 2, 7, 64] {
        let out: Vec<u8> = scoped_map_workers(Vec::new(), workers, |x: u8| x);
        assert!(out.is_empty(), "workers={workers}");
    }
}

#[test]
fn panicking_item_surfaces_its_index() {
    // Silence the default per-thread panic backtrace while the worker
    // panics are intentional; restore the hook afterwards.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(|| {
        scoped_map_workers((0u32..8).collect(), 3, |x| {
            if x == 5 {
                panic!("injected failure on cell {x}");
            }
            x
        })
    });
    let serial_outcome = std::panic::catch_unwind(|| {
        scoped_map_workers((0u32..8).collect(), 1, |x| {
            if x == 5 {
                panic!("injected failure on cell {x}");
            }
            x
        })
    });
    std::panic::set_hook(hook);

    for (label, res) in [("threaded", outcome), ("serial", serial_outcome)] {
        let payload = res.expect_err(label);
        let msg = payload
            .downcast_ref::<String>()
            .unwrap_or_else(|| panic!("{label}: string payload expected"));
        assert!(msg.contains("item 5"), "{label}: index missing in {msg:?}");
        assert!(
            msg.contains("injected failure on cell 5"),
            "{label}: original message missing in {msg:?}"
        );
    }
}

#[test]
fn max_workers_is_positive() {
    assert!(max_workers() >= 1);
}
