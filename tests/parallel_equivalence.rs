//! Bit-for-bit equivalence of serial and pooled experiment fan-out.
//!
//! The scoped worker pool must be a pure execution-strategy change:
//! every `(system × seed × rate × load)` cell owns its configuration
//! and its `SimRng` streams, so the full `ExperimentResult` series of a
//! pooled sweep must equal the serial reference **exactly** — compared
//! here through `ExperimentResult::canonical_text`, which renders every
//! simulation-determined field in round-trip float form (equal text ⇔
//! equal bits) and excludes only host wall-clock timing.
//!
//! Thread counts are pinned through the `*_workers` APIs rather than
//! `MUDI_THREADS` so the harness's own test parallelism cannot race on
//! the process environment.

use cluster::engine::ClusterConfig;
use cluster::experiments::{
    correlated_failure_sweep_serial, correlated_failure_sweep_workers, end_to_end,
    end_to_end_many_workers, failure_sweep_serial, failure_sweep_workers, load_sensitivity_serial,
    load_sensitivity_workers, max_throughput_serial, max_throughput_workers,
    warm_standby_sweep_serial, warm_standby_sweep_workers, FaultScope,
};
use cluster::metrics::ExperimentResult;
use cluster::systems::SystemKind;

/// Worker counts the pooled path is exercised at (≥ 3 per acceptance).
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// A small but non-trivial physical-cluster cell: full device count,
/// reduced job count and iteration scale so each run takes well under a
/// second while still exercising placement, tuning, and recovery.
fn small_config(system: SystemKind, seed: u64) -> (ClusterConfig, f64) {
    let mut cfg = ClusterConfig::physical(system, seed);
    cfg.jobs = 16;
    (cfg, 0.01)
}

fn series_text(series: &[(f64, ExperimentResult)]) -> Vec<String> {
    series
        .iter()
        .map(|(x, r)| format!("x={x:?}\n{}", r.canonical_text()))
        .collect()
}

/// The fig. 19 driver shape: a failure sweep over fault-rate
/// multipliers, serial reference vs the pool at every worker count.
#[test]
fn failure_sweep_is_bit_identical_across_thread_counts() {
    let rates = [0.0, 100.0];
    let (base, scale) = small_config(SystemKind::Mudi, 42);
    let serial = series_text(&failure_sweep_serial(
        SystemKind::Mudi,
        42,
        &rates,
        base.clone(),
        scale,
    ));
    assert_eq!(serial.len(), rates.len());
    for workers in WORKER_COUNTS {
        let pooled = series_text(&failure_sweep_workers(
            SystemKind::Mudi,
            42,
            &rates,
            base.clone(),
            scale,
            workers,
        ));
        assert_eq!(
            serial, pooled,
            "failure_sweep diverged from serial at workers={workers}"
        );
    }
}

/// The fig. 15 driver shape: a load sweep, serial vs pooled.
#[test]
fn load_sensitivity_is_bit_identical_across_thread_counts() {
    let multipliers = [1.0, 3.0];
    let (base, scale) = small_config(SystemKind::Gslice, 11);
    let serial = series_text(&load_sensitivity_serial(
        SystemKind::Gslice,
        11,
        &multipliers,
        base.clone(),
        scale,
    ));
    for workers in WORKER_COUNTS {
        let pooled = series_text(&load_sensitivity_workers(
            SystemKind::Gslice,
            11,
            &multipliers,
            base.clone(),
            scale,
            workers,
        ));
        assert_eq!(
            serial, pooled,
            "load_sensitivity diverged from serial at workers={workers}"
        );
    }
}

/// The fig. 8 driver shape: independent per-system `end_to_end` cells,
/// serial loop vs one pooled `end_to_end_many` fan-out.
#[test]
fn end_to_end_fanout_is_bit_identical_across_thread_counts() {
    let systems = [SystemKind::Gslice, SystemKind::MuxFlow, SystemKind::Mudi];
    let cells: Vec<_> = systems.iter().map(|&s| small_config(s, 7)).collect();
    let serial: Vec<String> = cells
        .iter()
        .cloned()
        .map(|(cfg, scale)| end_to_end(cfg, scale).canonical_text())
        .collect();
    for workers in WORKER_COUNTS {
        let pooled: Vec<String> = end_to_end_many_workers(cells.clone(), workers)
            .iter()
            .map(ExperimentResult::canonical_text)
            .collect();
        assert_eq!(
            serial, pooled,
            "end_to_end fan-out diverged from serial at workers={workers}"
        );
    }
}

/// The fig. 20 driver shape: a correlated-failure sweep over blast
/// scope × rate, serial reference vs the pool at every worker count.
/// Exercises the topology expansion, rack-striped layout, and
/// total-outage accounting under pooled execution.
#[test]
fn correlated_sweep_is_bit_identical_across_thread_counts() {
    let scopes = [FaultScope::Device, FaultScope::Rack];
    let rates = [0.0, 200.0];
    let (base, scale) = small_config(SystemKind::Mudi, 42);
    let serial: Vec<String> =
        correlated_failure_sweep_serial(SystemKind::Mudi, 42, &scopes, &rates, base.clone(), scale)
            .iter()
            .map(|(s, r, res)| format!("{}@{r:?}\n{}", s.name(), res.canonical_text()))
            .collect();
    assert_eq!(serial.len(), scopes.len() * rates.len());
    for workers in WORKER_COUNTS {
        let pooled: Vec<String> = correlated_failure_sweep_workers(
            SystemKind::Mudi,
            42,
            &scopes,
            &rates,
            base.clone(),
            scale,
            workers,
        )
        .iter()
        .map(|(s, r, res)| format!("{}@{r:?}\n{}", s.name(), res.canonical_text()))
        .collect();
        assert_eq!(
            serial, pooled,
            "correlated_failure_sweep diverged from serial at workers={workers}"
        );
    }
}

/// The fig. 14 driver shape: per-service max-throughput cells, serial
/// loop vs the pooled fan-out.
#[test]
fn max_throughput_is_bit_identical_across_thread_counts() {
    let serial = max_throughput_serial(SystemKind::Mudi, 9);
    assert!(!serial.is_empty());
    for workers in WORKER_COUNTS {
        let pooled = max_throughput_workers(SystemKind::Mudi, 9, workers);
        assert_eq!(
            serial.len(),
            pooled.len(),
            "max_throughput length diverged at workers={workers}"
        );
        for ((sa, qa), (sb, qb)) in serial.iter().zip(&pooled) {
            assert_eq!(sa, sb, "service order diverged at workers={workers}");
            assert!(
                (qa - qb).abs() == 0.0,
                "max QPS diverged at workers={workers}: {qa} vs {qb}"
            );
        }
    }
}

/// The fig. 21 driver shape: a warm-standby sweep over pool size ×
/// fault rate, serial reference vs the pool at every worker count.
/// Exercises the standby seeding, promote/demote transitions, and the
/// reserved-GPU%-seconds ledger under pooled execution.
#[test]
fn warm_standby_sweep_is_bit_identical_across_thread_counts() {
    let pools = [0usize, 1];
    let rates = [0.0, 200.0];
    let (base, scale) = small_config(SystemKind::Mudi, 42);
    let serial: Vec<String> =
        warm_standby_sweep_serial(SystemKind::Mudi, 42, &pools, &rates, base.clone(), scale)
            .iter()
            .map(|(p, r, res)| format!("pool{p}@{r:?}\n{}", res.canonical_text()))
            .collect();
    assert_eq!(serial.len(), pools.len() * rates.len());
    for workers in WORKER_COUNTS {
        let pooled: Vec<String> = warm_standby_sweep_workers(
            SystemKind::Mudi,
            42,
            &pools,
            &rates,
            base.clone(),
            scale,
            workers,
        )
        .iter()
        .map(|(p, r, res)| format!("pool{p}@{r:?}\n{}", res.canonical_text()))
        .collect();
        assert_eq!(
            serial, pooled,
            "warm_standby_sweep diverged from serial at workers={workers}"
        );
    }
}

/// Repeated pooled runs are self-identical (no hidden shared state in
/// the engine or the pool leaks between cells).
#[test]
fn pooled_runs_are_self_reproducible() {
    let rates = [0.0, 50.0];
    let (base, scale) = small_config(SystemKind::Mudi, 5);
    let a = series_text(&failure_sweep_workers(
        SystemKind::Mudi,
        5,
        &rates,
        base.clone(),
        scale,
        4,
    ));
    let b = series_text(&failure_sweep_workers(
        SystemKind::Mudi,
        5,
        &rates,
        base,
        scale,
        4,
    ));
    assert_eq!(a, b);
}
