//! Shard-count equivalence: the rack-sharded engine must be
//! bit-identical to the single-queue engine at every shard count.
//!
//! The sharded kernel partitions the event population by rack into
//! per-shard queues, but commits events serially in canonical
//! `(time, seq)` order, so the shard count (and the worker count — CI
//! re-runs this file under `MUDI_THREADS=2`) must be unobservable in
//! every simulated quantity. These tests compare full
//! `canonical_text` renderings — round-trip-precision floats of every
//! violation count, CT statistic, and fault ledger — across shard
//! counts on the golden-snapshot config, a faulted config (exercising
//! the cross-shard reroute message path), and a wider 8-rack topology
//! where 8 shards are actually distinct.
//!
//! Note: `MUDI_SHARDS` overrides `config.shards`; under that override
//! every run here resolves to the same count and the comparisons hold
//! trivially. The unsuffixed CI test job runs without the override.

use cluster::engine::{ClusterConfig, ClusterEngine};
use cluster::systems::SystemKind;
use resilience::{CorrelatedFaultConfig, FaultProfile};
use simcore::TopologyShape;

fn canon(cfg: ClusterConfig, scale: f64) -> String {
    ClusterEngine::new(cfg).run_scaled(scale).canonical_text()
}

/// The golden-snapshot shape (physical preset, 12 jobs) replayed at
/// 1, 2, and 4 shards over the default 4×2 topology.
#[test]
fn golden_shape_is_identical_at_1_2_and_4_shards() {
    let build = |shards: usize| {
        let mut cfg = ClusterConfig::physical(SystemKind::Mudi, 7);
        cfg.jobs = 12;
        cfg.shards = shards;
        cfg
    };
    let one = canon(build(1), 0.01);
    assert_eq!(one, canon(build(2), 0.01), "2 shards drifted from 1");
    assert_eq!(one, canon(build(4), 0.01), "4 shards drifted from 1");
}

/// Dense faults (device-local + correlated rack/node outages) drive
/// the cross-shard reroute traffic: a failed device's share fans out
/// to survivors in other racks as `ShardMsg`s. Their canonical drain
/// order must reproduce the single-queue inline loop exactly.
#[test]
fn faulted_runs_are_identical_at_1_vs_4_shards() {
    let build = |shards: usize| {
        let mut cfg = ClusterConfig::physical(SystemKind::Mudi, 11).with_faults(
            FaultProfile::scaled(200.0).with_correlated(CorrelatedFaultConfig::scaled(200.0)),
        );
        cfg.jobs = 10;
        cfg.shards = shards;
        // Short epochs force many speculation barriers through the
        // fault windows.
        cfg.shard_epoch_secs = 30.0;
        cfg
    };
    assert_eq!(canon(build(1), 0.005), canon(build(4), 0.005));
}

/// A wider 8-rack topology so 8 shards are all non-trivial, with the
/// shard count requested above the rack count to also pin the clamp.
#[test]
fn eight_rack_topology_is_identical_at_1_vs_8_shards() {
    let build = |shards: usize| {
        let mut cfg = ClusterConfig::tiny(SystemKind::Mudi, 13);
        cfg.topology = TopologyShape::new(8, 2);
        cfg.devices = 16;
        cfg.jobs = 10;
        cfg.shards = shards;
        cfg
    };
    let one = canon(build(1), 0.01);
    assert_eq!(one, canon(build(8), 0.01), "8 shards drifted from 1");
    // Requests above the rack count clamp to it (8 here).
    assert_eq!(one, canon(build(64), 0.01), "clamped count drifted");
}
