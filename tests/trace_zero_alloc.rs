//! The disabled trace bus must be zero-cost on the hot path: stages
//! call [`simcore::TraceBus::emit_with`] from inside the event loop,
//! and when tracing is off the event-constructing closure must never
//! run — no allocation, no event assembly.
//!
//! Asserted with a counting global allocator. This file deliberately
//! holds a single test: the counter is process-global, and a sibling
//! test allocating on another thread would race the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use simcore::{SimEvent, SimTime, TraceBus, TraceConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// An event whose construction must allocate (candidate vector), so a
/// disabled-path slip would show up in the counter.
fn allocating_event() -> SimEvent {
    SimEvent::Placement {
        task: 3,
        device: 7,
        candidates: vec![(0, 1), (2, 3), (4, 5)],
    }
}

#[test]
fn disabled_bus_emits_without_allocating() {
    let mut bus = TraceBus::disabled();

    // Warm up any lazy one-time allocation outside the measured window.
    bus.emit_with(SimTime::ZERO, allocating_event);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        bus.emit_with(SimTime::from_secs(i as f64), allocating_event);
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "disabled trace bus allocated {delta} times over 10k emits"
    );
    assert_eq!(bus.emitted(), 0, "disabled bus must not record events");

    // Sanity-check the counter itself: the enabled bus must allocate
    // (it actually builds the events), or the zero above proves nothing.
    let mut on = TraceBus::new(TraceConfig::enabled());
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..100u64 {
        on.emit_with(SimTime::from_secs(i as f64), allocating_event);
    }
    assert!(
        ALLOCATIONS.load(Ordering::SeqCst) > before,
        "counting allocator failed to observe enabled-path allocations"
    );
    assert_eq!(on.emitted(), 100);
}
