//! Golden-snapshot tests for the experiment drivers.
//!
//! Small-scale `failure_sweep` and `load_sensitivity` runs at fixed
//! seeds are compared **exactly** (canonical round-trip float text)
//! against checked-in expectations under `tests/golden/`. A scheduler,
//! placement, or recovery change that silently shifts any simulated
//! quantity — violation counts, CT statistics, fault accounting — fails
//! here and must re-record the goldens deliberately:
//!
//! ```text
//! MUDI_BLESS=1 cargo test --test golden_snapshots
//! ```
//!
//! The rendered fields are pure IEEE-754 arithmetic plus libm calls
//! (`exp`, `ln`, …); goldens are recorded on x86-64 Linux/glibc, the CI
//! platform. A port to another libm may need a re-record.

use std::fmt::Write as _;
use std::path::PathBuf;

use cluster::engine::{ClusterConfig, ClusterSession, LiveFault};
use cluster::experiments::{
    correlated_failure_sweep, failure_sweep, load_sensitivity, warm_standby_sweep, FaultScope,
};
use cluster::metrics::ExperimentResult;
use cluster::systems::SystemKind;
use simcore::SimTime;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if simcore::env::flag("MUDI_BLESS") {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}; record with MUDI_BLESS=1",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{name} drifted from its golden snapshot.\n\
         If the change is intentional, re-record with MUDI_BLESS=1.\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

fn render_series(series: &[(f64, ExperimentResult)]) -> String {
    let mut out = String::new();
    for (x, r) in series {
        let _ = writeln!(out, "== cell x={x:?} ==");
        out.push_str(&r.canonical_text());
    }
    out
}

/// Tiny deterministic cell: full 12-device physical topology, few jobs,
/// heavily scaled-down iterations — seconds to run, same code paths.
fn snapshot_config(system: SystemKind, seed: u64) -> (ClusterConfig, f64) {
    let mut cfg = ClusterConfig::physical(system, seed);
    cfg.jobs = 12;
    (cfg, 0.01)
}

#[test]
fn failure_sweep_matches_golden() {
    let (base, scale) = snapshot_config(SystemKind::Mudi, 7);
    let series = failure_sweep(SystemKind::Mudi, 7, &[0.0, 100.0], base, scale);
    check_golden("failure_sweep.txt", &render_series(&series));
}

/// The fig. 20 shape: correlated blast radii over the default 4×2
/// topology. Pins the topology expansion, the rack-striped layout, the
/// reliability-aware selector inputs, and the total-outage accounting.
#[test]
fn correlated_failures_match_golden() {
    let (base, scale) = snapshot_config(SystemKind::Mudi, 7);
    let series = correlated_failure_sweep(
        SystemKind::Mudi,
        7,
        &[FaultScope::Node, FaultScope::Rack],
        &[200.0],
        base,
        scale,
    );
    let mut out = String::new();
    for (scope, rate, r) in &series {
        let _ = writeln!(out, "== cell scope={} rate={rate:?} ==", scope.name());
        out.push_str(&r.canonical_text());
    }
    check_golden("correlated_failures.txt", &out);
}

/// The fig. 21 shape: warm-standby pool sizes against the pool-0
/// baseline under rack-correlated faults. Pins the pool seeding, the
/// promote/demote state machine, the reserved-GPU%-seconds ledger, and
/// — via the pool-0 cell — that a zero pool replays the plain
/// rack-correlated path byte-for-byte.
#[test]
fn warm_standby_matches_golden() {
    let (base, scale) = snapshot_config(SystemKind::Mudi, 7);
    let series = warm_standby_sweep(SystemKind::Mudi, 7, &[0, 1], &[200.0], base, scale);
    let mut out = String::new();
    for (pool, rate, r) in &series {
        let _ = writeln!(out, "== cell pool={pool} rate={rate:?} ==");
        out.push_str(&r.canonical_text());
    }
    check_golden("warm_standby.txt", &out);
}

/// A fixed scripted session — deploys, scales, live faults, routed
/// requests — rendered down to the canonical result text. Pins the
/// incremental `ClusterSession` surface (the dense-index engine must
/// replay the exact pre-refactor behavior, not just the batch drivers).
#[test]
fn session_script_matches_golden() {
    let (cfg, scale) = snapshot_config(SystemKind::Mudi, 7);
    let mut s = ClusterSession::new_scaled(cfg, scale);
    let mut out = String::new();

    s.step_until(SimTime::from_secs(600.0));
    let services: Vec<_> = s.zoo().services().iter().map(|sp| sp.id).collect();
    for &svc in services.iter().take(3) {
        for _ in 0..5 {
            let r = s.infer(svc).expect("replica up");
            let _ = writeln!(
                out,
                "infer {} -> dev{} {:?}",
                svc.0, r.device, r.latency_secs
            );
        }
    }

    let grown = s.scale_service(services[1], 3).expect("scale up");
    let _ = writeln!(
        out,
        "scale svc1 -> {} moves={:?}",
        grown.achieved, grown.moves
    );

    s.inject_fault(2, LiveFault::DeviceFailure { repair_secs: 400.0 })
        .expect("fault");
    s.inject_fault(
        5,
        LiveFault::Slowdown {
            factor: 0.5,
            duration_secs: 300.0,
        },
    )
    .expect("fault");
    s.step_until(SimTime::from_secs(1800.0));
    s.inject_fault(7, LiveFault::ProcessCrash { salt: 3 })
        .expect("fault");
    s.inject_fault(9, LiveFault::MpsRestart).expect("fault");
    s.step_until(SimTime::from_secs(4000.0));

    for r in s.service_report() {
        let _ = writeln!(
            out,
            "svc {} {} up={}/{} req={:?} viol={:?} api={}/{} outage={}",
            r.id.0,
            r.name,
            r.replicas_up,
            r.replicas_assigned,
            r.requests,
            r.violations,
            r.api_violations,
            r.api_requests,
            r.in_outage
        );
    }
    let fm = s.fault_metrics();
    let _ = writeln!(
        out,
        "faults dev={} slow={} crash={} mps={} outage_secs={:?}",
        fm.device_failures,
        fm.slowdowns,
        fm.process_crashes,
        fm.mps_failures,
        fm.service_outage_secs
    );
    let _ = writeln!(out, "fired={}", s.events_fired());
    out.push_str(&s.finish().canonical_text());

    check_golden("session_script.txt", &out);
}

/// The LLM-mix shape: the physical cluster with the generative
/// services enabled, driven through a scripted token-inference session
/// — per-token verdict draws, a device failure on an LLM host, token
/// traffic across the repair — down to the canonical result text
/// (which carries the `service[i].tokens:` accrual lines). Pins the
/// continuous-batching analytic accrual, the token-SLO tuner path, and
/// the per-token verdict sampler. This golden is new with the
/// generative regime; every pre-existing golden is untouched by it
/// (classifier-only configs never construct generative services).
#[test]
fn llm_mix_session_matches_golden() {
    let mut cfg = ClusterConfig::physical(SystemKind::Mudi, 7);
    cfg.jobs = 12;
    cfg.llm_services = true;
    let mut s = ClusterSession::new_scaled(cfg, 0.01);
    let mut out = String::new();

    s.step_until(SimTime::from_secs(900.0));
    let gen: Vec<_> = s
        .zoo()
        .services()
        .iter()
        .filter(|sp| sp.is_generative())
        .map(|sp| sp.id)
        .collect();
    assert!(!gen.is_empty(), "LLM mix must expose generative services");
    let script = |s: &mut ClusterSession, out: &mut String, tokens: u32| {
        for &svc in &gen {
            match s.infer_tokens(svc, tokens) {
                Ok(o) => {
                    let _ = writeln!(
                        out,
                        "gen {} tokens={tokens} -> dev{} standby={} ttft={:?} \
                         ttft_viol={} itl_viol={}/{}",
                        svc.0,
                        o.device,
                        o.via_standby,
                        o.ttft_secs,
                        o.ttft_violation,
                        o.itl_violations(),
                        o.tokens.len()
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "gen {} tokens={tokens} -> err {e}", svc.0);
                }
            }
        }
    };
    for tokens in [1u32, 8, 32] {
        script(&mut s, &mut out, tokens);
    }

    // Fail an LLM host and keep token traffic flowing across the
    // repair window.
    s.inject_fault(6, LiveFault::DeviceFailure { repair_secs: 600.0 })
        .expect("fault");
    s.step_until(SimTime::from_secs(1200.0));
    script(&mut s, &mut out, 16);
    s.step_until(SimTime::from_secs(2400.0));
    script(&mut s, &mut out, 16);

    let _ = writeln!(out, "fired={}", s.events_fired());
    out.push_str(&s.finish().canonical_text());
    check_golden("llm_mix_session.txt", &out);
}

#[test]
fn load_sensitivity_matches_golden() {
    let (base, scale) = snapshot_config(SystemKind::Gslice, 7);
    let series = load_sensitivity(SystemKind::Gslice, 7, &[1.0, 4.0], base, scale);
    check_golden("load_sensitivity.txt", &render_series(&series));
}
