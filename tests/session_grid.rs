//! Scripted-session equivalence across the full shard × worker grid.
//!
//! The parallel-commit contract: `config.shards` (how the event
//! population is partitioned into device lanes) and `config.workers`
//! (how many threads execute lane phases concurrently) must both be
//! unobservable in every simulated quantity. A seeded session driven
//! through the live admin surface — deploys, scales, injected faults,
//! routed requests — must replay bit-identically at every grid point,
//! and must be insensitive to *where* the driver yields: stepping to
//! one far horizon and stepping in small increments that land mid
//! epoch-window must produce the same canonical rendering.
//!
//! Note: `MUDI_SHARDS` / `MUDI_THREADS` override `config.shards` /
//! `config.workers`; under those overrides every cell resolves to the
//! same point and the comparisons hold trivially. The unsuffixed CI
//! test job runs without the overrides.

use std::fmt::Write;

use cluster::engine::{ClusterConfig, ClusterSession, LiveFault};
use cluster::systems::SystemKind;
use resilience::{CorrelatedFaultConfig, FaultProfile};
use simcore::{SimTime, TopologyShape};

/// An 8-rack faulted config so 8 shards are non-trivial and the
/// cross-lane paths (reroute, standby mirror, repair undo) all fire.
fn grid_config(shards: usize, workers: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::tiny(SystemKind::Mudi, 23).with_faults(
        FaultProfile::scaled(150.0).with_correlated(CorrelatedFaultConfig::scaled(150.0)),
    );
    cfg.topology = TopologyShape::new(8, 2);
    cfg.devices = 16;
    cfg.jobs = 10;
    cfg.shards = shards;
    cfg.workers = workers;
    // An epoch length dividing every scripted instant, so boundary
    // yields tile the script exactly.
    cfg.shard_epoch_secs = 100.0;
    cfg
}

/// Drives one fixed admin script through a session, rendering every
/// observable (admin outcomes, routed requests, reports, the final
/// canonical result text) into one comparable string. `advance`
/// abstracts *how* the clock reaches each scripted instant.
fn run_script(cfg: ClusterConfig, advance: impl Fn(&mut ClusterSession, SimTime)) -> String {
    let mut s = ClusterSession::new_scaled(cfg, 0.01);
    let mut out = String::new();
    let services: Vec<_> = s.zoo().services().iter().map(|sp| sp.id).collect();

    advance(&mut s, SimTime::from_secs(500.0));
    let _ = writeln!(
        out,
        "deploy3 {:?}",
        s.deploy_replica(3, services[0]).map_err(|e| e.to_string())
    );
    for &svc in services.iter().take(2) {
        match s.infer(svc) {
            Ok(r) => {
                let _ = writeln!(
                    out,
                    "infer {} dev{} {:?} standby={} viol={}",
                    svc.0, r.device, r.latency_secs, r.via_standby, r.violation
                );
            }
            Err(e) => {
                let _ = writeln!(out, "infer {} err {e}", svc.0);
            }
        }
    }

    advance(&mut s, SimTime::from_secs(900.0));
    let _ = writeln!(
        out,
        "fail2 {}",
        s.inject_fault(2, LiveFault::DeviceFailure { repair_secs: 350.0 })
            .is_ok()
    );
    let _ = writeln!(
        out,
        "slow9 {}",
        s.inject_fault(
            9,
            LiveFault::Slowdown {
                factor: 0.6,
                duration_secs: 250.0,
            }
        )
        .is_ok()
    );

    advance(&mut s, SimTime::from_secs(1500.0));
    let _ = writeln!(
        out,
        "scale1 {:?}",
        s.scale_service(services[1], 3)
            .map(|o| (o.achieved, o.moves))
            .map_err(|e| e.to_string())
    );
    let _ = writeln!(
        out,
        "crash5 {}",
        s.inject_fault(5, LiveFault::ProcessCrash { salt: 1 })
            .is_ok()
    );

    advance(&mut s, SimTime::from_secs(2500.0));
    for r in s.service_report() {
        let _ = writeln!(
            out,
            "svc {} up={}/{} req={:?} viol={:?} api={}/{} outage={}",
            r.id.0,
            r.replicas_up,
            r.replicas_assigned,
            r.requests,
            r.violations,
            r.api_violations,
            r.api_requests,
            r.in_outage
        );
    }
    let fm = s.fault_metrics();
    let _ = writeln!(
        out,
        "faults dev={} slow={} crash={} promo={} outage_secs={:?}",
        fm.device_failures,
        fm.slowdowns,
        fm.process_crashes,
        fm.standby_promotions,
        fm.service_outage_secs
    );
    let _ = writeln!(out, "fired={}", s.events_fired());
    out.push_str(&s.finish().canonical_text());
    out
}

/// Steps straight to each scripted instant.
fn direct(s: &mut ClusterSession, t: SimTime) {
    s.step_until(t);
}

/// The full 4×4 grid replays the (1 shard, 1 worker) cell exactly.
#[test]
fn scripted_session_is_identical_across_shard_worker_grid() {
    let baseline = run_script(grid_config(1, 1), direct);
    for shards in [1usize, 2, 4, 8] {
        for workers in [1usize, 2, 4, 8] {
            if (shards, workers) == (1, 1) {
                continue;
            }
            let cell = run_script(grid_config(shards, workers), direct);
            assert_eq!(
                baseline, cell,
                "shards={shards} workers={workers} drifted from the 1x1 baseline"
            );
        }
    }
}

/// Forced epoch-boundary yields: handing control back to the driver
/// at every 100 s epoch boundary (a `step_until` per epoch) must be
/// indistinguishable from stepping straight to each horizon. This is
/// the commit contract's yield guarantee — barriers live on the epoch
/// grid, so a yield *on* the grid adds no barrier. (A mid-epoch
/// horizon inserts an extra barrier and deterministically re-quantizes
/// cross-lane effects; such yields are outside the contract.)
#[test]
fn epoch_boundary_yields_match_direct_stepping() {
    let per_epoch = |s: &mut ClusterSession, t: SimTime| {
        let mut at = s.now();
        while at < t {
            at = (at + simcore::SimDuration::from_secs(100.0)).min(t);
            s.step_until(at);
        }
    };
    let one = run_script(grid_config(4, 2), direct);
    let many = run_script(grid_config(4, 2), per_epoch);
    assert_eq!(one, many, "epoch-boundary yields perturbed the replay");
}
