//! Property-based tests (proptest) on the core data structures and the
//! invariants the system's correctness rests on.

use proptest::prelude::*;

use cluster::engine::{ClusterConfig, ClusterEngine, ClusterSession, LiveFault};
use cluster::systems::SystemKind;
use modeling::fit::piecewise::{fit_piecewise, PiecewiseLinear};
use modeling::solver::{latency_budget, min_gpu_fraction};
use resilience::{CorrelatedFaultConfig, FaultConfig, FaultDomain, FaultProfile, FaultSchedule};
use simcore::{EventQueue, Histogram, SimRng, SimTime, StreamingStats, Topology, TopologyShape};
use workloads::{ColoWorkload, GroundTruth, ServiceId, TaskId, Zoo};

fn gt() -> GroundTruth {
    GroundTruth::new(Zoo::standard(), 99)
}

proptest! {
    /// The event queue pops in non-decreasing time order regardless of
    /// the schedule order.
    #[test]
    fn event_queue_is_time_ordered(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_secs(t), i);
        }
        let mut last = 0.0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.as_secs() >= last);
            last = t.as_secs();
        }
    }

    /// Welford statistics match the naive two-pass computation.
    #[test]
    fn streaming_stats_match_naive(xs in proptest::collection::vec(-1e4f64..1e4, 2..300)) {
        let mut s = StreamingStats::new();
        xs.iter().for_each(|&x| s.record(x));
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var));
    }

    /// Histogram quantiles are monotone in the quantile and bounded by
    /// the observed extrema (within bucket resolution).
    #[test]
    fn histogram_quantiles_are_monotone(xs in proptest::collection::vec(1e-4f64..1e3, 10..500)) {
        let mut h = Histogram::new();
        xs.iter().for_each(|&x| h.record(x));
        let mut last = 0.0;
        for i in 1..=10 {
            let q = h.quantile(i as f64 / 10.0).unwrap();
            prop_assert!(q >= last);
            last = q;
        }
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(h.quantile(1.0).unwrap() <= max * 1.03 + 1e-6);
    }

    /// A fitted piece-wise curve reproduces noiseless piece-wise data
    /// to within a tight tolerance at the sample points.
    #[test]
    fn piecewise_fit_reproduces_noiseless_data(
        k1 in -5.0f64..-0.5,
        k2 in -0.05f64..-0.001,
        x0 in 0.25f64..0.75,
        y0 in 0.01f64..1.0,
    ) {
        let truth = PiecewiseLinear { k1, k2, x0, y0 };
        let pts: Vec<(f64, f64)> = (0..9)
            .map(|i| {
                let x = 0.1 + i as f64 * 0.1;
                (x, truth.eval(x))
            })
            .collect();
        let fit = fit_piecewise(&pts).expect("nine points");
        // The knee quantizes to the sample grid, so individual points
        // near it carry an irreducible error (the same effect behind
        // the paper's Tab. 2 percentages); bound the *mean* error
        // relative to the curve's range, plus a loose pointwise cap.
        let range = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max)
            - pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let mut total = 0.0;
        for &(x, y) in &pts {
            let err = (fit.eval(x) - y).abs() / range.max(1e-9);
            prop_assert!(err < 0.30, "range-relative err {err} at {x}");
            total += err;
        }
        let mean_err = total / pts.len() as f64;
        prop_assert!(mean_err < 0.08, "mean err {mean_err}");
    }

    /// Eq. 4 solutions always satisfy the constraint they were solved
    /// for, and tightening the SLO never shrinks the required fraction.
    #[test]
    fn solver_solutions_meet_their_budget(
        k1 in -3.0f64..-0.2,
        x0 in 0.2f64..0.8,
        y0 in 0.005f64..0.3,
        qps in 50.0f64..1000.0,
        batch in 2u32..512,
        slo in 0.05f64..2.0,
    ) {
        let curve = PiecewiseLinear { k1, k2: k1 / 50.0, x0, y0 };
        if let Some(frac) = min_gpu_fraction(&curve, qps, batch as f64, slo, 0.05, 0.9) {
            let budget = latency_budget(qps, batch as f64, slo);
            prop_assert!(curve.eval(frac) <= budget + 1e-9,
                "eval {} vs budget {budget}", curve.eval(frac));
            // A 2x tighter SLO can only demand at least as much GPU.
            if let Some(tight) = min_gpu_fraction(&curve, qps, batch as f64, slo / 2.0, 0.05, 0.9) {
                prop_assert!(tight >= frac - 1e-9);
            }
        }
    }

    /// Ground-truth monotonicity: more GPU never increases inference
    /// latency; adding a co-runner never decreases it.
    #[test]
    fn ground_truth_latency_is_monotone(
        svc in 0usize..6,
        task in 0usize..9,
        batch in prop::sample::select(vec![2u32, 8, 32, 128, 512]),
        lo_pct in 1u32..8,
    ) {
        let g = gt();
        let sid = ServiceId(svc);
        let tid = TaskId(task);
        let lo = lo_pct as f64 * 0.1;
        let hi = lo + 0.1;
        let colo = [ColoWorkload::training(tid, 0.4)];
        prop_assert!(
            g.inference_latency(sid, batch, lo, &colo)
                >= g.inference_latency(sid, batch, hi, &colo)
        );
        prop_assert!(
            g.inference_latency(sid, batch, lo, &colo) >= g.inference_latency(sid, batch, lo, &[])
        );
    }

    /// Training iteration time decreases with GPU share and increases
    /// with co-runner count.
    #[test]
    fn training_time_is_monotone(
        task in 0usize..9,
        share_pct in 2u32..9,
    ) {
        let g = gt();
        let tid = TaskId(task);
        let share = share_pct as f64 * 0.1;
        prop_assert!(
            g.training_iteration(tid, share, &[]) > g.training_iteration(tid, share + 0.1, &[])
        );
        let other = ColoWorkload::training(TaskId((task + 1) % 9), 0.3);
        prop_assert!(
            g.training_iteration(tid, share, &[other]) >= g.training_iteration(tid, share, &[])
        );
    }

    /// Unified-memory conservation: device-resident plus swapped bytes
    /// always equal total demand, and swapped never exceeds the
    /// training demand (inference never swaps).
    #[test]
    fn memory_manager_conserves_bytes(
        inf_gb in 0.0f64..60.0,
        t1 in 0.0f64..30.0,
        t2 in 0.0f64..30.0,
        shrink in 0.0f64..1.0,
    ) {
        use gpu_sim::{MemoryManager, ResidentId};
        let mut m = MemoryManager::new(40.0);
        m.add_training(SimTime::from_secs(0.0), ResidentId(1), t1);
        m.add_training(SimTime::from_secs(1.0), ResidentId(2), t2);
        m.set_inference_demand(SimTime::from_secs(2.0), inf_gb);
        prop_assert!((m.device_resident_gb() + m.total_swapped_gb() - m.total_demand_gb()).abs() < 1e-9);
        prop_assert!(m.total_swapped_gb() <= t1 + t2 + 1e-9);
        prop_assert!(m.device_resident_gb() <= 40.0 + inf_gb.max(0.0));
        // Shrinking the inference demand can only reduce swapping.
        let before = m.total_swapped_gb();
        m.set_inference_demand(SimTime::from_secs(3.0), inf_gb * shrink);
        prop_assert!(m.total_swapped_gb() <= before + 1e-9);
        prop_assert!((m.device_resident_gb() + m.total_swapped_gb() - m.total_demand_gb()).abs() < 1e-9);
    }

    /// Layer-list parsing is total over printable inputs: it either
    /// returns an architecture whose total equals the sum of parsed
    /// counts, or a structured error — never a panic.
    #[test]
    fn layer_list_parse_is_total(
        names in proptest::collection::vec("[a-z]{1,10}", 0..10),
        counts in proptest::collection::vec(1u32..50, 0..10),
    ) {
        use workloads::NetworkArchitecture;
        let text: String = names
            .iter()
            .zip(counts.iter().chain(std::iter::repeat(&1)))
            .map(|(n, c)| format!("{n} x {c}\n"))
            .collect();
        if let Ok(arch) = NetworkArchitecture::parse_layer_list(&text) {
            let expected: u32 = names
                .iter()
                .zip(counts.iter().chain(std::iter::repeat(&1)))
                .map(|(_, &c)| c)
                .sum();
            prop_assert_eq!(arch.total_layers(), expected);
        }
    }

    /// Standby GPU% conservation: on one device, the inference
    /// fraction plus the standby reserve plus the rebalanced training
    /// total never exceeds 100% (beyond the documented per-task 1%
    /// floor) — whether the standby is idle or promoted.
    #[test]
    fn standby_reserve_conserves_device_gpu(
        inf_pct in 1u32..9,
        reserve_pct in 1u32..4,
        n_train in 1usize..4,
        cap_pct in 2u32..11,
        qps in 1.0f64..500.0,
    ) {
        use gpu_sim::{
            DeviceId, GpuDevice, InferenceInstance, ResidentId, StandbyInstance, TrainingProcess,
        };
        let g = gt();
        let t0 = SimTime::from_secs(0.0);
        let mut dev = GpuDevice::new(DeviceId(0), 40.0);
        let reserve = reserve_pct as f64 * 0.1;
        dev.seed_standby(&g, t0, StandbyInstance::new(ServiceId(0), 16, reserve, true));
        // The engine caps the primary's slice at 1 - reserve; mirror it.
        let inf = (inf_pct as f64 * 0.1).min(1.0 - reserve).max(0.01);
        dev.deploy_inference(&g, t0, InferenceInstance::new(ServiceId(1), 16, inf, qps));
        for i in 0..n_train {
            dev.add_training(
                &g,
                t0,
                TrainingProcess::new(ResidentId(i as u64), TaskId(i), 0.2, 1000),
            )
            .expect("free training slot");
        }
        let cap = (cap_pct as f64 * 0.1).min(1.0);
        let floor = 0.01 * n_train as f64;
        let total = |dev: &GpuDevice| -> f64 {
            inf + dev.standby_reserve()
                + dev.trainings().iter().map(|t| t.gpu_fraction).sum::<f64>()
        };
        dev.rebalance_training_fractions(cap);
        prop_assert!(total(&dev) <= 1.0 + floor + 1e-9, "idle total {}", total(&dev));
        // Promotion serves on the reserved slice — it never grows it.
        dev.promote_standby(&g, SimTime::from_secs(1.0), qps);
        prop_assert!(dev.standby_reserve() <= reserve + 1e-12);
        dev.rebalance_training_fractions(cap);
        prop_assert!(total(&dev) <= 1.0 + floor + 1e-9, "active total {}", total(&dev));
        // And demotion hands the same slice back to the idle pool.
        dev.demote_standby(&g, SimTime::from_secs(2.0));
        prop_assert!((dev.standby_reserve() - reserve).abs() < 1e-12);
        prop_assert!(!dev.standby().expect("still parked").is_active());
    }

    /// Fork determinism: the same (seed, label) always yields the same
    /// stream; drawing from the parent never disturbs children.
    #[test]
    fn rng_forks_are_stable(seed in any::<u64>(), draws in 0usize..20) {
        let mut parent = SimRng::seed(seed);
        for _ in 0..draws {
            let _ = parent.u64();
        }
        let a = parent.fork("child").u64();
        let b = SimRng::seed(seed).fork("child").u64();
        prop_assert_eq!(a, b);
    }

    /// Fault schedules replay bit-for-bit from a seed: same seed, rate,
    /// and device count produce the identical event sequence, and every
    /// event is well-formed (in-horizon, valid device, sane magnitudes).
    #[test]
    fn fault_schedule_replays_bit_for_bit(
        seed in any::<u64>(),
        rate in 10.0f64..400.0,
        devices in 1usize..24,
    ) {
        let cfg = FaultConfig::scaled(rate);
        let horizon = 200_000.0;
        let a = FaultSchedule::generate(&cfg, devices, horizon, &SimRng::seed(seed));
        let b = FaultSchedule::generate(&cfg, devices, horizon, &SimRng::seed(seed));
        prop_assert_eq!(a.events(), b.events());
        for w in a.events().windows(2) {
            prop_assert!(w[0].at.as_secs() <= w[1].at.as_secs());
        }
        for e in a.events() {
            prop_assert!(e.at.as_secs() >= 0.0 && e.at.as_secs() < horizon);
            prop_assert!(e.device < devices);
            if let resilience::FaultKind::Slowdown { factor, duration } = e.kind {
                prop_assert!(factor > 0.0 && factor < 1.0);
                prop_assert!(duration.as_secs() > 0.0);
            }
        }
    }

    /// Correlated schedules replay bit-for-bit from a seed, every
    /// blast radius is contained within its declared fault domain, and
    /// turning correlated classes on never perturbs the device-local
    /// draws (the Device-tagged subsequence equals the plain schedule).
    #[test]
    fn correlated_schedule_replays_and_contains_blast_radius(
        seed in any::<u64>(),
        rate in 50.0f64..600.0,
        racks in 1usize..5,
        nodes_per_rack in 1usize..4,
        devices in 2usize..24,
    ) {
        let shape = TopologyShape { racks, nodes_per_rack };
        let topo = Topology::new(shape, devices);
        let cfg = FaultConfig::scaled(rate);
        let corr = CorrelatedFaultConfig::scaled(rate);
        let horizon = 200_000.0;
        let gen = || {
            FaultSchedule::generate_with_topology(
                &cfg, Some(&corr), &topo, horizon, &SimRng::seed(seed),
            )
        };
        let (a, b) = (gen(), gen());
        prop_assert_eq!(a.events(), b.events());
        // Blast-radius containment: a Node(n)/Rack(r) event may only
        // strike a device that the topology places in that domain.
        for e in a.events() {
            match e.domain {
                FaultDomain::Device => {}
                FaultDomain::Node(n) => {
                    prop_assert!(topo.devices_in_node(n).contains(&e.device),
                        "node {n} event hit device {} outside {:?}",
                        e.device, topo.devices_in_node(n));
                    prop_assert_eq!(topo.node_of(e.device), n);
                }
                FaultDomain::Rack(r) => {
                    prop_assert!(topo.devices_in_rack(r).contains(&e.device),
                        "rack {r} event hit device {} outside {:?}",
                        e.device, topo.devices_in_rack(r));
                    prop_assert_eq!(topo.rack_of(e.device), r);
                }
            }
        }
        // Stream isolation: device-local draws are byte-identical to
        // the flat generator for the same seed.
        let flat = FaultSchedule::generate(&cfg, devices, horizon, &SimRng::seed(seed));
        let device_only: Vec<_> = a
            .events()
            .iter()
            .filter(|e| e.domain == FaultDomain::Device)
            .cloned()
            .collect();
        prop_assert_eq!(device_only.as_slice(), flat.events());
    }
}

proptest! {
    // Whole-simulation replays are expensive; a handful of cases is
    // enough to catch nondeterminism sneaking into the fault paths.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end determinism under faults: two engines built from the
    /// same seeded config face the identical fault schedule and produce
    /// identical `ExperimentResult`s.
    #[test]
    fn faulty_experiment_replays_identically(
        seed in 0u64..1_000_000,
        rate in prop::sample::select(vec![25.0f64, 100.0, 250.0]),
    ) {
        let build = || {
            let mut cfg = ClusterConfig::tiny(SystemKind::Random, seed)
                .with_faults(FaultProfile::scaled(rate));
            cfg.devices = 4;
            cfg.jobs = 8;
            ClusterEngine::new(cfg)
        };
        let (ea, eb) = (build(), build());
        prop_assert_eq!(ea.fault_schedule().events(), eb.fault_schedule().events());
        let a = ea.run_scaled(0.002);
        let b = eb.run_scaled(0.002);
        prop_assert_eq!(a.jobs_completed, b.jobs_completed);
        prop_assert_eq!(a.faults.device_failures, b.faults.device_failures);
        prop_assert_eq!(a.faults.slowdowns, b.faults.slowdowns);
        prop_assert_eq!(a.faults.process_crashes, b.faults.process_crashes);
        prop_assert_eq!(a.faults.mps_failures, b.faults.mps_failures);
        prop_assert!((a.makespan_secs - b.makespan_secs).abs() < 1e-9);
        prop_assert!((a.useful_iterations - b.useful_iterations).abs() < 1e-9);
        prop_assert!((a.faults.lost_iterations - b.faults.lost_iterations).abs() < 1e-9);
        prop_assert!((a.faults.dropped_requests - b.faults.dropped_requests).abs() < 1e-9);
        prop_assert!((a.faults.rerouted_requests - b.faults.rerouted_requests).abs() < 1e-9);
        prop_assert!(
            (a.overall_violation_rate() - b.overall_violation_rate()).abs() < 1e-12
        );
    }

    /// End-to-end determinism under *correlated* faults, across system
    /// kinds: the same seeded config replays the identical expanded
    /// schedule and lands on identical results — including the
    /// total-outage accounting — no matter which placement policy runs.
    #[test]
    fn correlated_experiment_replays_identically(
        seed in 0u64..1_000_000,
        rate in prop::sample::select(vec![100.0f64, 400.0]),
        system in prop::sample::select(vec![
            SystemKind::Gslice,
            SystemKind::MudiFlat,
            SystemKind::Mudi,
        ]),
    ) {
        let build = || {
            let mut cfg = ClusterConfig::tiny(system, seed).with_faults(
                FaultProfile::scaled(rate)
                    .with_correlated(CorrelatedFaultConfig::scaled(rate)),
            );
            cfg.devices = 6;
            cfg.jobs = 8;
            ClusterEngine::new(cfg)
        };
        let (ea, eb) = (build(), build());
        prop_assert_eq!(ea.fault_schedule().events(), eb.fault_schedule().events());
        let a = ea.run_scaled(0.002);
        let b = eb.run_scaled(0.002);
        prop_assert_eq!(a.canonical_text(), b.canonical_text());
        prop_assert_eq!(a.faults.service_outages, b.faults.service_outages);
        prop_assert_eq!(a.faults.correlated_outages, b.faults.correlated_outages);
        prop_assert!((a.faults.service_outage_secs - b.faults.service_outage_secs).abs() < 1e-12);
        // Correlated outage windows can only come from correlated
        // service outages.
        prop_assert!(a.faults.correlated_outages <= a.faults.service_outages);
    }

    /// Traffic conservation across standby promote/rejoin: a rack
    /// blast that kills every replica of one service books the blast
    /// window's demand exactly once. With a pool, the standby serves
    /// what the pool-0 run drops — so `dropped + standby_served` must
    /// equal the pool-0 run's `dropped` on the identical schedule.
    #[test]
    fn standby_coverage_conserves_blast_traffic(seed in 0u64..100_000) {
        use resilience::{FaultEvent, FaultKind, FaultProfile, RecoveryPolicy, StandbyPolicy};
        use simcore::SimDuration;
        let n = Zoo::standard().services().len();
        let run = |pool: usize| {
            let mut cfg = ClusterConfig::tiny(SystemKind::Random, seed);
            cfg.devices = n + 1; // Flat layout: service 0 on devices 0 and n.
            let mut profile = FaultProfile::scaled(1.0);
            profile.recovery = RecoveryPolicy {
                failover_inference: true,
                ..RecoveryPolicy::standard()
            };
            profile.recovery.standby = StandbyPolicy::warm(pool);
            cfg.faults = Some(profile);
            let mut engine = ClusterEngine::new(cfg);
            engine.set_fault_schedule(FaultSchedule::from_events(
                [0usize, n]
                    .into_iter()
                    .map(|d| FaultEvent {
                        at: SimTime::from_secs(300.0),
                        device: d,
                        kind: FaultKind::DeviceFailure {
                            repair: SimDuration::from_mins(4.0),
                        },
                        domain: FaultDomain::Rack(0),
                    })
                    .collect(),
            ));
            engine.run_scaled(0.002)
        };
        let with_pool = run(1);
        let without = run(0);
        // Both runs must outlive the blast window for the books to
        // cover it in full.
        prop_assert!(with_pool.makespan_secs > 540.0 && without.makespan_secs > 540.0);
        prop_assert!(with_pool.faults.standby_served_requests > 0.0);
        let covered =
            with_pool.faults.dropped_requests + with_pool.faults.standby_served_requests;
        let baseline = without.faults.dropped_requests;
        // Exact up to the sub-second promote window the standby cannot
        // cover (and a matching sliver of reroute-ledger rounding).
        let err = (covered - baseline).abs() / baseline.max(1.0);
        prop_assert!(err < 0.01, "covered {covered} vs dropped {baseline} (err {err})");
    }

    /// Pool size 0 is byte-identical to the pre-standby failover path:
    /// `StandbyPolicy::warm(0)` and `StandbyPolicy::disabled()` produce
    /// the same canonical result text, with no standby section in it.
    #[test]
    fn zero_pool_replays_the_plain_failover_path(
        seed in 0u64..1_000_000,
        rate in prop::sample::select(vec![50.0f64, 200.0]),
    ) {
        use resilience::{FaultProfile, StandbyPolicy};
        let run = |standby: StandbyPolicy| {
            let mut profile = FaultProfile::scaled(rate)
                .with_correlated(CorrelatedFaultConfig::scaled(rate));
            profile.recovery.standby = standby;
            let mut cfg = ClusterConfig::tiny(SystemKind::Mudi, seed).with_faults(profile);
            cfg.devices = 6;
            cfg.jobs = 8;
            ClusterEngine::new(cfg).run_scaled(0.002)
        };
        let zero = run(StandbyPolicy::warm(0));
        let disabled = run(StandbyPolicy::disabled());
        prop_assert_eq!(zero.canonical_text(), disabled.canonical_text());
        prop_assert!(!zero.canonical_text().contains("standby:"));
        prop_assert_eq!(zero.faults.standby_slots, 0);
        prop_assert_eq!(zero.faults.standby_promotions, 0);
        prop_assert!(zero.faults.standby_reserved_gpu_secs == 0.0);
    }
}

// ---------------------------------------------------------------------
// Live-session determinism under random command sequences.
// ---------------------------------------------------------------------

/// One random live-session command. Device and service fields are raw
/// draws reduced modulo the session's actual counts at apply time, so
/// generation needs no knowledge of the topology.
#[derive(Clone, Debug)]
enum SessionOp {
    /// Advance the session clock by this many seconds.
    Step(f64),
    /// Deploy a replica of `service` on `device`.
    Deploy { device: usize, service: usize },
    /// Scale `service` to `target` live replicas.
    Scale { service: usize, target: usize },
    /// Inject a live fault on `device`.
    Fault { device: usize, fault: LiveFault },
}

/// Draws one op from a seeded [`SimRng`]; the in-tree proptest shim
/// supplies primitive ranges only, so sequence shape comes from a
/// deterministic generator keyed by a proptest-drawn seed.
fn random_session_op(rng: &mut SimRng) -> SessionOp {
    match rng.uniform_usize(0, 6) {
        // Half the mass on stepping so sequences actually advance time.
        0..=2 => SessionOp::Step(rng.uniform(1.0, 600.0)),
        3 => SessionOp::Deploy {
            device: rng.u64() as usize,
            service: rng.u64() as usize,
        },
        4 => SessionOp::Scale {
            service: rng.u64() as usize,
            target: rng.uniform_usize(0, 4),
        },
        _ => {
            let fault = match rng.uniform_usize(0, 3) {
                0 => LiveFault::DeviceFailure {
                    repair_secs: rng.uniform(60.0, 900.0),
                },
                1 => LiveFault::Slowdown {
                    factor: rng.uniform(0.2, 0.9),
                    duration_secs: rng.uniform(30.0, 600.0),
                },
                2 => LiveFault::ProcessCrash { salt: rng.u64() },
                _ => LiveFault::MpsRestart,
            };
            SessionOp::Fault {
                device: rng.u64() as usize,
                fault,
            }
        }
    }
}

/// Replays `op` against a session; `clock` carries the monotone
/// session horizon. Command errors (busy / down devices) are part of
/// the deterministic outcome, not test failures.
fn apply_session_op(s: &mut ClusterSession, clock: &mut f64, op: &SessionOp) {
    let services: Vec<ServiceId> = s.zoo().services().iter().map(|sp| sp.id).collect();
    match *op {
        SessionOp::Step(dt) => {
            *clock += dt;
            s.step_until(SimTime::from_secs(*clock));
        }
        SessionOp::Deploy { device, service } => {
            let _ = s.deploy_replica(
                device % s.device_count(),
                services[service % services.len()],
            );
        }
        SessionOp::Scale { service, target } => {
            let _ = s.scale_service(services[service % services.len()], target);
        }
        SessionOp::Fault { device, fault } => {
            let _ = s.inject_fault(device % s.device_count(), fault);
        }
    }
}

proptest! {
    // Each case replays two whole live sessions; a handful of random
    // sequences is enough to catch order- or layout-dependent state.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random deploy / scale / fault / step sequence driven through
    /// the dense-index live session is deterministic end to end: two
    /// sessions built from the same seed land on identical
    /// `service_report` rows, identical `fault_metrics`, and a
    /// bit-identical final `ExperimentResult`. Together with the
    /// scripted-session golden (`tests/golden/session_script.txt`,
    /// recorded before the dense-index rewrite) this pins the engine's
    /// observable behavior across the data-layout change.
    #[test]
    fn random_session_sequences_replay_identically(
        seed in 0u64..1_000_000,
        opseed in any::<u64>(),
        len in 1usize..12,
    ) {
        let ops: Vec<SessionOp> = {
            let mut rng = SimRng::seed(opseed);
            (0..len).map(|_| random_session_op(&mut rng)).collect()
        };
        let build = || {
            let mut cfg = ClusterConfig::tiny(SystemKind::Mudi, seed);
            cfg.devices = 4;
            cfg.jobs = 8;
            ClusterSession::new_scaled(cfg, 0.002)
        };
        let (mut sa, mut sb) = (build(), build());
        let (mut ta, mut tb) = (0.0, 0.0);
        for op in &ops {
            apply_session_op(&mut sa, &mut ta, op);
            apply_session_op(&mut sb, &mut tb, op);
        }
        prop_assert_eq!(sa.events_fired(), sb.events_fired());
        prop_assert_eq!(sa.service_report(), sb.service_report());
        let (fa, fb) = (sa.fault_metrics(), sb.fault_metrics());
        prop_assert_eq!(format!("{fa:?}"), format!("{fb:?}"));
        prop_assert_eq!(sa.finish().canonical_text(), sb.finish().canonical_text());
    }

    /// Shard-count invariance: the same random live-session command
    /// sequence replayed against a 1-shard and a 4-shard session lands
    /// on bit-identical reports and a bit-identical final result. The
    /// sharded engine partitions the event population by rack but
    /// commits in canonical `(time, seq)` order, so the shard count
    /// must be unobservable in every output. (Under `MUDI_SHARDS` both
    /// sides resolve to the same override and the test still holds.)
    #[test]
    fn session_sequences_are_shard_count_invariant(
        seed in 0u64..1_000_000,
        opseed in any::<u64>(),
        len in 1usize..12,
    ) {
        let ops: Vec<SessionOp> = {
            let mut rng = SimRng::seed(opseed);
            (0..len).map(|_| random_session_op(&mut rng)).collect()
        };
        let build = |shards: usize| {
            let mut cfg = ClusterConfig::tiny(SystemKind::Mudi, seed);
            cfg.devices = 4;
            cfg.jobs = 8;
            cfg.shards = shards;
            // Short epochs so even brief sequences cross several
            // speculation barriers.
            cfg.shard_epoch_secs = 30.0;
            ClusterSession::new_scaled(cfg, 0.002)
        };
        let (mut sa, mut sb) = (build(1), build(4));
        let (mut ta, mut tb) = (0.0, 0.0);
        for op in &ops {
            apply_session_op(&mut sa, &mut ta, op);
            apply_session_op(&mut sb, &mut tb, op);
        }
        prop_assert_eq!(sa.events_fired(), sb.events_fired());
        prop_assert_eq!(sa.service_report(), sb.service_report());
        let (fa, fb) = (sa.fault_metrics(), sb.fault_metrics());
        prop_assert_eq!(format!("{fa:?}"), format!("{fb:?}"));
        prop_assert_eq!(sa.finish().canonical_text(), sb.finish().canonical_text());
    }
}

// ---------------------------------------------------------------------
// Generative regime: continuous batching, KV accounting, LLM replay.
// ---------------------------------------------------------------------

proptest! {
    /// Token conservation: under any seeded arrival/length sequence
    /// with interleaved device faults and queue sheds, every admitted
    /// decode token is delivered, still pending (queued, in flight, or
    /// re-owed after a fault), or booked as dropped — never lost. After
    /// draining, the ledger closes exactly.
    #[test]
    fn continuous_batching_conserves_tokens(
        opseed in any::<u64>(),
        n_reqs in 1usize..40,
        cap in 1u32..16,
        llm in 0usize..2,
    ) {
        use gpu_sim::{ContinuousBatcher, GenRequest, MemoryManager};
        let g = GroundTruth::new(Zoo::with_llms(), 7);
        let svc = g
            .zoo()
            .require_service(["Llama-7B", "OPT-13B"][llm])
            .unwrap()
            .id;
        let mut b = ContinuousBatcher::new(&g, svc, cap, 0.6);
        // Roomy pool: memory pressure is the next test's subject.
        let mut mem = MemoryManager::new(100.0);
        let mut rng = SimRng::seed(opseed);
        let mut submitted = 0usize;
        for _ in 0..160 {
            while submitted < n_reqs && rng.chance(0.4) {
                b.submit(GenRequest {
                    id: submitted as u64,
                    prompt_tokens: rng.uniform_usize(1, 512) as u32,
                    decode_tokens: rng.uniform_usize(1, 96) as u32,
                });
                submitted += 1;
            }
            match rng.uniform_usize(0, 12) {
                0 => {
                    b.fault(&mut mem, b.now());
                }
                1 => {
                    b.shed_queue();
                }
                _ => {
                    b.step(&g, &mut mem);
                }
            }
            prop_assert!(b.check_conservation().is_ok(), "{:?}", b.check_conservation());
        }
        // Late arrivals the op loop never got to, then drain to empty:
        // nothing left pending, and admitted splits exactly into
        // delivered + dropped.
        while submitted < n_reqs {
            b.submit(GenRequest {
                id: submitted as u64,
                prompt_tokens: rng.uniform_usize(1, 512) as u32,
                decode_tokens: rng.uniform_usize(1, 96) as u32,
            });
            submitted += 1;
        }
        let mut guard = 0u32;
        while b.pending_tokens() > 0 {
            b.step(&g, &mut mem);
            guard += 1;
            prop_assert!(guard < 50_000, "batcher failed to drain");
        }
        prop_assert!(b.check_conservation().is_ok(), "{:?}", b.check_conservation());
        prop_assert_eq!(b.queued(), 0);
        prop_assert_eq!(b.running(), 0);
        let l = b.ledger();
        prop_assert_eq!(l.admitted, (l.completed - l.refaulted) + l.dropped);
    }

    /// KV-cache accounting: the KV GB the batcher charges to the
    /// unified pool equal the live context (prefilled prompt plus
    /// generated tokens) of every in-flight request times the
    /// per-token cache size — recomputed here by an independent shadow
    /// of the join/prefill/decode schedule. Training pages swap out
    /// only above the pool high-watermark, and exactly the overflow.
    #[test]
    fn kv_charge_matches_live_context(
        opseed in any::<u64>(),
        cap in 1u32..16,
        train_gb in 0.0f64..32.0,
    ) {
        use gpu_sim::{ContinuousBatcher, GenRequest, MemoryManager, ResidentId};
        use std::collections::VecDeque;
        let g = GroundTruth::new(Zoo::with_llms(), 7);
        let spec = g.zoo().require_service("Llama-7B").unwrap();
        let genp = spec.generative.as_ref().unwrap();
        let (kv_mb, chunk) = (genp.kv_mb_per_token, genp.prefill_chunk_tokens.max(1.0) as u32);
        let pool_gb = 40.0;
        let mut mem = MemoryManager::new(pool_gb);
        mem.add_training(SimTime::from_secs(0.0), ResidentId(1), train_gb);
        let mut b = ContinuousBatcher::new(&g, spec.id, cap, 0.6);
        let mut rng = SimRng::seed(opseed);

        // Shadow of the batcher's schedule: FIFO joins, chunked
        // prefill, one decode per iteration, swap-remove retirement
        // (order matters — it fixes the requeue order on fault).
        #[derive(Clone, Copy)]
        struct Shadow {
            prompt: u32,
            decode: u32,
            prefilled: u32,
            decoded: u32,
        }
        let mut squeue: VecDeque<(u32, u32)> = VecDeque::new();
        let mut srun: Vec<Shadow> = Vec::new();

        let mut next_id = 0u64;
        for _ in 0..120 {
            if rng.chance(0.5) {
                // Long prompts so the KV cache actually pressures the
                // 40 GB pool at the larger caps.
                let (p, d) = (rng.uniform_usize(16, 2048) as u32, rng.uniform_usize(1, 64) as u32);
                b.submit(GenRequest { id: next_id, prompt_tokens: p, decode_tokens: d });
                squeue.push_back((p, d));
                next_id += 1;
            }
            if rng.chance(0.05) {
                b.fault(&mut mem, b.now());
                for f in srun.drain(..).rev() {
                    squeue.push_front((f.prompt, f.decode));
                }
                continue;
            }
            let r = b.step(&g, &mut mem);

            // Replay the same iteration on the shadow.
            while srun.len() < cap as usize {
                let Some((p, d)) = squeue.pop_front() else { break };
                srun.push(Shadow { prompt: p, decode: d, prefilled: 0, decoded: 0 });
            }
            if !srun.is_empty() {
                let mut i = 0;
                while i < srun.len() {
                    let f = &mut srun[i];
                    if f.prefilled < f.prompt {
                        f.prefilled = (f.prefilled + chunk).min(f.prompt);
                        i += 1;
                        continue;
                    }
                    f.decoded += 1;
                    if f.decoded >= f.decode {
                        srun.swap_remove(i);
                        continue;
                    }
                    i += 1;
                }
            }
            let ctx: u64 = srun.iter().map(|f| (f.prefilled + f.decoded) as u64).sum();
            let expected_kv = ctx as f64 * kv_mb / 1024.0;
            prop_assert!(
                (r.kv_gb - expected_kv).abs() < 1e-9,
                "KV charge {} != shadow context charge {}",
                r.kv_gb,
                expected_kv
            );
            prop_assert!((b.kv_demand_gb() - expected_kv).abs() < 1e-9);

            // Pool identities: total demand is weights + live KV +
            // training; swap activates only above the high-watermark
            // and moves exactly the overflow (inference never swaps).
            let demand = mem.total_demand_gb();
            let expected_demand = spec.weights_gb + expected_kv + train_gb;
            prop_assert!((demand - expected_demand).abs() < 1e-9);
            let swapped = mem.total_swapped_gb();
            if demand <= pool_gb + 1e-9 {
                prop_assert!(swapped < 1e-9, "swap below the watermark: {swapped}");
            } else {
                let overflow = (demand - pool_gb).min(train_gb);
                prop_assert!(
                    (swapped - overflow).abs() < 1e-9,
                    "swapped {swapped} != overflow {overflow}"
                );
            }
            prop_assert!((mem.device_resident_gb() + swapped - demand).abs() < 1e-9);
        }
    }
}

proptest! {
    // Each case boots four physical-preset sessions; a few random
    // sequences suffice — the goal is bit-equality, not coverage.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// LLM-mix determinism replay: a random token-inference / step /
    /// fault sequence against a mixed classifier+generative cluster
    /// produces bit-identical per-token verdicts and a bit-identical
    /// final fingerprint when replayed — and the shard count (1 vs 4)
    /// is unobservable in both. (Under `MUDI_SHARDS` both sides
    /// resolve to the same override and the test still holds.)
    #[test]
    fn llm_mix_sessions_replay_shard_invariant(
        seed in 0u64..1_000_000,
        opseed in any::<u64>(),
    ) {
        let build = |shards: usize| {
            let mut cfg = ClusterConfig::physical(SystemKind::Mudi, seed);
            cfg.llm_services = true;
            cfg.jobs = 8;
            cfg.shards = shards;
            cfg.shard_epoch_secs = 30.0;
            ClusterSession::new_scaled(cfg, 0.002)
        };
        let run = |mut s: ClusterSession| -> (String, String) {
            let gen: Vec<ServiceId> = s
                .zoo()
                .services()
                .iter()
                .filter(|sp| sp.is_generative())
                .map(|sp| sp.id)
                .collect();
            assert!(!gen.is_empty(), "LLM mix must deploy generative services");
            let mut rng = SimRng::seed(opseed);
            let mut clock = 0.0;
            let mut transcript = String::new();
            for i in 0..10 {
                clock += rng.uniform(60.0, 900.0);
                s.step_until(SimTime::from_secs(clock));
                let svc = *rng.pick(&gen);
                let tokens = rng.uniform_usize(1, 32) as u32;
                let outcome = s.infer_tokens(svc, tokens);
                transcript.push_str(&format!("{i}: {outcome:?}\n"));
                if rng.chance(0.25) {
                    let device = rng.uniform_usize(0, s.device_count());
                    let _ = s.inject_fault(device, LiveFault::MpsRestart);
                }
            }
            (transcript, s.finish().canonical_text())
        };
        let (ta, fa) = run(build(1));
        let (tb, fb) = run(build(4));
        prop_assert_eq!(&ta, &tb, "per-token transcripts diverged across shard counts");
        prop_assert_eq!(&fa, &fb, "fingerprints diverged across shard counts");
        // The generative services actually accrued token-level mass.
        prop_assert!(fa.contains(".tokens:"), "no token accrual in fingerprint:\n{fa}");
        // And the transcript carries real verdicts, not errors.
        prop_assert!(ta.contains("ttft_secs"), "no successful token inference:\n{ta}");
    }
}
